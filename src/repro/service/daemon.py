"""The allocation daemon: streaming placement against live state.

An :class:`AllocationDaemon` owns a
:class:`~repro.service.state.ClusterStateStore` and routes each incoming
``place`` request through a registered allocator
(:func:`repro.allocators.registry.make_allocator`) under the admission
envelope of :func:`repro.simulation.admission.offer` — reject on
capacity exhaustion, or queue (shift the request later) up to
``max_delay`` ticks. Requests processed in start-time order produce the
exact placements — and therefore the exact analytic energy — of the
equivalent offline :func:`~repro.simulation.engine.simulate_online`
run; the end-to-end test asserts this bit-for-bit, across a mid-stream
kill and restore.

Durability: with a ``data_dir`` the daemon journals every mutating
request before answering and checkpoints the store every
``snapshot_every`` placements (see :mod:`repro.service.persistence`).
:meth:`AllocationDaemon.restore` rebuilds the identical daemon from the
newest snapshot plus the journal tail.

Transports (all stdlib): :func:`serve_stdio` for JSON-lines over
stdin/stdout, :func:`serve_tcp` for the same framing over TCP, and
:func:`start_metrics_server` for the Prometheus ``/metrics`` endpoint
over HTTP. One lock serializes all state mutation, so every transport
can run concurrently against one daemon.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from socketserver import StreamRequestHandler, ThreadingTCPServer
from time import perf_counter
from typing import IO, Mapping

from repro.allocators.registry import make_allocator
from repro.exceptions import ReproError, ServiceError, ValidationError
from repro.obs.explain import ExplainRecorder
from repro.obs.tracer import get_tracer
from repro.service.metrics import CONTENT_TYPE, ServiceMetrics
from repro.service.persistence import (
    RequestJournal,
    SnapshotManager,
    read_journal,
)
from repro.service.protocol import encode, parse_request
from repro.service.state import ClusterStateStore, snapshot_meta
from repro.simulation.admission import offer, shift_request
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["AllocationDaemon", "DaemonTCPServer", "serve_stdio",
           "serve_tcp", "start_metrics_server"]

JOURNAL_NAME = "journal.jsonl"


class AllocationDaemon:
    """Serves a stream of placement requests against live cluster state.

    Parameters
    ----------
    store:
        The live cluster state to allocate into.
    algorithm / seed:
        Registry name and seed of the placement algorithm.
    algo_params:
        Extra keyword parameters forwarded to the allocator constructor
        (``repro serve --algo-param k=v``); they override the
        daemon-level ``seed``/``policy`` defaults and are persisted in
        snapshot metadata so :meth:`restore` rebuilds the same allocator.
    max_delay:
        Admission behaviour when nothing fits: ``0`` rejects outright,
        ``k > 0`` queues the request up to ``k`` ticks later (the first
        shifted start that fits wins).
    data_dir:
        Directory for the request journal and snapshots; ``None`` runs
        the daemon without durability.
    snapshot_every:
        Checkpoint the store after this many placements (0 disables
        periodic snapshots; a final one is still written on shutdown).
    fsync:
        Whether the journal fsyncs each entry (disable only in tests).
    """

    def __init__(self, store: ClusterStateStore, *,
                 algorithm: str = "min-energy", seed: int | None = None,
                 algo_params: Mapping[str, object] | None = None,
                 max_delay: int = 0, data_dir: str | Path | None = None,
                 snapshot_every: int = 100, fsync: bool = True,
                 _restored_seq: int | None = None) -> None:
        if max_delay < 0:
            raise ValidationError(
                f"max_delay must be >= 0, got {max_delay}")
        if snapshot_every < 0:
            raise ValidationError(
                f"snapshot_every must be >= 0, got {snapshot_every}")
        self.store = store
        algo_params = dict(algo_params or {})
        self.config = {"algorithm": algorithm, "seed": seed,
                       "algo_params": algo_params,
                       "max_delay": max_delay,
                       "snapshot_every": snapshot_every}
        # Explicit --algo-param values win over the daemon-level defaults.
        params: dict[str, object] = {"seed": seed, "policy": store.policy,
                                     **algo_params}
        self.allocator = make_allocator(algorithm, **params)
        self.allocator.prepare(store.states)
        self.metrics = ServiceMetrics()
        self.metrics.register_algorithm(algorithm)
        self.closed = False
        self._lock = threading.Lock()
        self._placed_since_snapshot = 0
        self._shutdown_hooks: list = []
        self.journal: RequestJournal | None = None
        self.snapshots: SnapshotManager | None = None
        if data_dir is not None:
            data_dir = Path(data_dir)
            self.snapshots = SnapshotManager(data_dir)
            self.journal = RequestJournal(data_dir / JOURNAL_NAME,
                                          fsync=fsync)
            if _restored_seq is None:
                if self.journal.next_seq > 1:
                    raise ValidationError(
                        f"{data_dir} already holds a journal; use "
                        f"AllocationDaemon.restore() to resume it")
                # Seed the journal with the starting state so a crash
                # before the first snapshot is still recoverable.
                self.journal.append({
                    "op": "init",
                    "snapshot": store.to_snapshot(self._meta(seq=1)),
                })

    # -- durability --------------------------------------------------------

    def _meta(self, seq: int) -> dict[str, object]:
        return {"seq": seq, "config": dict(self.config),
                "counters": self.metrics.to_meta()}

    def _last_seq(self) -> int:
        return self.journal.next_seq - 1 if self.journal else 0

    def write_snapshot(self) -> Path | None:
        """Checkpoint the store now; returns the snapshot path."""
        if self.snapshots is None:
            return None
        seq = self._last_seq()
        document = self.store.to_snapshot(self._meta(seq))
        self._placed_since_snapshot = 0
        return self.snapshots.save(document, seq)

    def _maybe_snapshot(self) -> None:
        every = int(self.config["snapshot_every"])
        if self.snapshots is not None and every > 0 and \
                self._placed_since_snapshot >= every:
            self.write_snapshot()

    @classmethod
    def restore(cls, data_dir: str | Path, *,
                fsync: bool = True) -> "AllocationDaemon":
        """Rebuild a daemon from ``data_dir``'s snapshot + journal tail.

        Replayed placements apply the journalled decision directly (no
        allocator re-run), so the restored state is identical even when
        the original decisions came from a randomized allocator.
        """
        data_dir = Path(data_dir)
        document = SnapshotManager(data_dir).load_latest()
        entries = list(read_journal(data_dir / JOURNAL_NAME))
        if document is None:
            init = next((e for e in entries if e.get("op") == "init"), None)
            if init is None:
                raise ValidationError(
                    f"{data_dir}: no snapshot and no journal init entry; "
                    f"nothing to restore")
            document = init["snapshot"]
        meta = snapshot_meta(document)
        config = meta.get("config", {})
        if not isinstance(config, Mapping):
            raise ValidationError(f"{data_dir}: malformed snapshot config")
        store = ClusterStateStore.from_snapshot(document)
        covered = int(meta.get("seq", 0))
        algo_params = config.get("algo_params")
        if algo_params is not None and not isinstance(algo_params, Mapping):
            raise ValidationError(
                f"{data_dir}: malformed snapshot algo_params")
        daemon = cls(
            store,
            algorithm=str(config.get("algorithm", "min-energy")),
            seed=config.get("seed"),
            algo_params=algo_params,
            max_delay=int(config.get("max_delay", 0)),
            snapshot_every=int(config.get("snapshot_every", 100)),
            data_dir=data_dir, fsync=fsync, _restored_seq=covered)
        counters = meta.get("counters")
        if isinstance(counters, Mapping):
            daemon.metrics.restore_meta(counters)
        for entry in entries:
            if int(entry["seq"]) > covered:
                daemon._replay(entry)
        return daemon

    def _replay(self, entry: Mapping[str, object]) -> None:
        op = entry.get("op")
        if op == "init":
            return
        if op == "tick":
            now = int(entry["now"])
            if now > self.store.clock:
                self.store.advance_to(now)
            return
        if op != "place":
            raise ValidationError(f"unknown journal entry op {op!r}")
        vm = vm_from_record(entry["vm"])
        if vm.start > self.store.clock:
            self.store.advance_to(vm.start)
        decision = str(entry["decision"])
        delay = int(entry.get("delay", 0))
        if decision == "placed":
            self.store.commit(shift_request(vm, delay),
                              int(entry["server_id"]))
        self.metrics.observe_replayed(
            decision, delay, algorithm=str(self.config["algorithm"]))

    # -- request handling --------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Serve one raw protocol line; always returns a response line."""
        tracer = get_tracer()
        with tracer.span("service.request"):
            with tracer.span("service.ingest"):
                try:
                    message = parse_request(line)
                except ServiceError as exc:
                    with self._lock:
                        self.metrics.observe_error()
                    return encode({"ok": False, "error": str(exc)})
            response = self.handle(message)
            with tracer.span("service.respond"):
                return encode(response)

    def handle(self, message: Mapping[str, object]) -> dict[str, object]:
        """Serve one parsed request; never raises on domain errors."""
        op = message.get("op")
        with self._lock:
            try:
                return self._dispatch(op, message)
            except ReproError as exc:
                self.metrics.observe_error()
                return {"ok": False, "op": op, "error": str(exc)}

    def _dispatch(self, op: object,
                  message: Mapping[str, object]) -> dict[str, object]:
        if self.closed:
            raise ServiceError("daemon is shut down")
        if op == "place":
            return self._handle_place(message)
        if op == "tick":
            return self._handle_tick(message)
        if op == "stats":
            return self._handle_stats()
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "text": self.metrics.render(self.store)}
        if op == "snapshot":
            path = self.write_snapshot()
            if path is None:
                raise ServiceError(
                    "daemon runs without a data_dir; nothing to snapshot")
            return {"ok": True, "op": "snapshot", "path": str(path)}
        if op == "ping":
            return {"ok": True, "op": "ping", "clock": self.store.clock}
        if op == "shutdown":
            return self._handle_shutdown()
        raise ServiceError(f"unknown op {op!r}")  # pragma: no cover

    def _handle_place(self, message: Mapping[str, object]
                      ) -> dict[str, object]:
        vm = message.get("_vm")
        if vm is None:  # direct dict call without parse_request
            try:
                vm = vm_from_record(message["vm"])
            except (TypeError, KeyError, ValueError) as exc:
                raise ServiceError(f"malformed vm record: {exc}") from exc
        explain = message.get("explain", False)
        if not isinstance(explain, bool):
            raise ServiceError(
                f"place request field 'explain' must be a boolean, "
                f"got {explain!r}")
        recorder = ExplainRecorder() if explain else None
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("service.place", vm_id=vm.vm_id) as span:
            if vm.start > self.store.clock:
                with tracer.span("service.advance", to=vm.start):
                    self.store.advance_to(vm.start)
            with tracer.span("service.allocate",
                             algorithm=str(self.config["algorithm"])):
                decision = offer(vm, self.store.states, self.allocator,
                                 max_delay=int(self.config["max_delay"]),
                                 recorder=recorder)
            response: dict[str, object] = {"ok": True, "op": "place",
                                           "vm_id": vm.vm_id}
            entry: dict[str, object] = {"op": "place",
                                        "vm": vm_to_record(vm)}
            if decision is None:
                response["decision"] = entry["decision"] = "rejected"
            else:
                server_id = decision.state.server.server_id
                with tracer.span("service.commit", server_id=server_id):
                    delta = self.store.commit(decision.vm, server_id)
                response.update(decision="placed", server_id=server_id,
                                delay=decision.delay, energy_delta=delta)
                entry.update(decision="placed", server_id=server_id,
                             delay=decision.delay)
                self._placed_since_snapshot += 1
            latency = perf_counter() - started
            span.set(decision=str(response["decision"]))
            response["latency_ms"] = latency * 1e3
            if recorder is not None and recorder.last is not None:
                response["explanation"] = recorder.last.to_record()
            if self.journal is not None:
                with tracer.span("service.journal"):
                    self.journal.append(entry)
            self.metrics.observe_request(
                str(response["decision"]), latency,
                int(response.get("delay", 0)),
                algorithm=str(self.config["algorithm"]),
                candidates=self.allocator.candidates_feasible)
            if response["decision"] == "placed":
                self._maybe_snapshot()
        return response

    def _handle_tick(self, message: Mapping[str, object]
                     ) -> dict[str, object]:
        now = message.get("now")
        if isinstance(now, bool) or not isinstance(now, int) or now < 0:
            raise ServiceError(
                f"tick request needs a non-negative integer 'now', "
                f"got {now!r}")
        if now > self.store.clock:
            self.store.advance_to(now)
            if self.journal is not None:
                self.journal.append({"op": "tick", "now": now})
        return {"ok": True, "op": "tick", "clock": self.store.clock,
                "servers_active": self.store.servers_active(),
                "running_vms": self.store.running_vms()}

    def _handle_stats(self) -> dict[str, object]:
        return {
            "ok": True, "op": "stats",
            "clock": self.store.clock,
            "placed": self.metrics.requests["placed"],
            "rejected": self.metrics.requests["rejected"],
            "delayed": self.metrics.delayed,
            "errors": self.metrics.errors,
            "servers_active": self.store.servers_active(),
            "servers_asleep": self.store.servers_asleep(),
            "running_vms": self.store.running_vms(),
            "fleet_power": self.store.fleet_power(),
            "energy_accumulated": self.store.energy_accumulated,
            "energy_total": self.store.energy_total(),
        }

    def _handle_shutdown(self) -> dict[str, object]:
        self.write_snapshot()
        if self.journal is not None:
            self.journal.close()
        self.closed = True
        for hook in self._shutdown_hooks:
            hook()
        return {"ok": True, "op": "shutdown", "clock": self.store.clock}

    def on_shutdown(self, hook) -> None:
        """Register a callable run when a shutdown request is served."""
        self._shutdown_hooks.append(hook)

    def render_metrics(self) -> str:
        """The Prometheus text page (thread-safe)."""
        with self._lock:
            return self.metrics.render(self.store)


# -- transports -------------------------------------------------------------


def serve_stdio(daemon: AllocationDaemon, in_stream: IO[str],
                out_stream: IO[str]) -> None:
    """Serve JSON-lines over a pair of text streams until EOF/shutdown."""
    for line in in_stream:
        if not line.strip():
            continue
        out_stream.write(daemon.handle_line(line))
        out_stream.flush()
        if daemon.closed:
            break


class _TCPHandler(StreamRequestHandler):
    def handle(self) -> None:
        daemon = self.server.daemon
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            self.wfile.write(daemon.handle_line(line).encode("utf-8"))
            self.wfile.flush()
            if daemon.closed:
                self.server.trigger_shutdown()
                return


class DaemonTCPServer(ThreadingTCPServer):
    """JSON-lines over TCP; one thread per connection, shared daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 daemon: AllocationDaemon) -> None:
        super().__init__(address, _TCPHandler)
        self.daemon = daemon

    def trigger_shutdown(self) -> None:
        """Stop ``serve_forever`` without deadlocking the handler."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve_tcp(daemon: AllocationDaemon, host: str = "127.0.0.1",
              port: int = 0) -> DaemonTCPServer:
    """Bind a TCP server for ``daemon``; the caller runs serve_forever.

    Port 0 binds an ephemeral port — read it back from
    ``server.server_address``.
    """
    return DaemonTCPServer((host, port), daemon)


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        if self.path in ("/", "/metrics"):
            body = self.server.daemon.render_metrics().encode("utf-8")
            content_type = CONTENT_TYPE
            status = 200
        elif self.path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
            status = 200
        else:
            body = b"not found\n"
            content_type = "text/plain; charset=utf-8"
            status = 404
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr logging."""


def start_metrics_server(daemon: AllocationDaemon, host: str = "127.0.0.1",
                         port: int = 0) -> ThreadingHTTPServer:
    """Serve ``/metrics`` and ``/healthz`` on a background thread."""
    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    server.daemon = daemon
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-metrics")
    thread.start()
    daemon.on_shutdown(lambda: threading.Thread(
        target=server.shutdown, daemon=True).start())
    return server
