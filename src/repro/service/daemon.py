"""The allocation daemon: streaming placement against live state.

An :class:`AllocationDaemon` owns a
:class:`~repro.service.state.ClusterStateStore` and routes each incoming
``place`` request through a registered allocator
(:func:`repro.allocators.registry.make_allocator`) under the admission
envelope of :func:`repro.simulation.admission.offer` — reject on
capacity exhaustion, or queue (shift the request later) up to
``max_delay`` ticks. Requests processed in start-time order produce the
exact placements — and therefore the exact analytic energy — of the
equivalent offline :func:`~repro.simulation.engine.simulate_online`
run; the end-to-end test asserts this bit-for-bit, across a mid-stream
kill and restore.

Durability: with a ``data_dir`` the daemon journals every mutating
request before answering and checkpoints the store every
``snapshot_every`` placements (see :mod:`repro.service.persistence`).
:meth:`AllocationDaemon.restore` rebuilds the identical daemon from the
newest snapshot plus the journal tail.

Transports (all stdlib): :func:`serve_stdio` for JSON-lines over
stdin/stdout, :func:`serve_tcp` for the same framing over TCP, and
:func:`start_metrics_server` for the Prometheus ``/metrics`` endpoint
over HTTP.

Consolidation: with ``consolidate_every`` and/or ``frag_threshold``
set, the daemon runs a background defragmentation pass at epoch
boundaries (every N ticks) or whenever the
:class:`~repro.consolidation.fragmentation.FragmentationMonitor`
reading crosses the threshold — at most one episode per tick — and
clients can force one with the protocol-v2 ``consolidate`` op. Each
episode runs the shared
:class:`~repro.consolidation.planner.MigrationPlanner` and is
journaled as **one atomic group** (like failure episodes), so
kill+restore mid-consolidation reproduces exact state.

Concurrency model (protocol v2 redesign)
----------------------------------------
Mutating operations (``place``, ``place_batch``, ``tick``,
``fail_server``, ``recover_server``, ``consolidate``, plus
snapshotting and shutdown) serialize on one *commit lock* — placement
decisions must observe each other's commits, so decision order is the
wire arrival order. Within a decision the feasibility scan fans out
over the store's :class:`~repro.placement.sharding.ShardedFleet`; each
shard's states are guarded by a per-shard lock that scans hold while
probing and the commit path holds while mutating the chosen server.
Read-only operations (``stats``, ``metrics``, ``ping``) bypass the
commit lock entirely — :class:`ServiceMetrics` is internally
thread-safe and the store's gauges are single reads — so scrapes and
health checks never queue behind placements. Ingest is *bounded*: at
most ``max_inflight`` mutating requests may be in flight; beyond that
the daemon answers ``{"ok": false, "error": "overloaded",
"retry_after": ...}`` instead of piling up threads.
"""

from __future__ import annotations

import json
import threading
import time as _time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from socketserver import StreamRequestHandler, ThreadingTCPServer
from time import perf_counter
from typing import IO, Callable, Mapping

from repro.allocators.registry import make_allocator
from repro.consolidation.fragmentation import FragmentationMonitor
from repro.consolidation.planner import MigrationPlanner
from repro.exceptions import (
    ProtocolVersionError,
    ReproError,
    ServiceError,
    UnavailableError,
    UnknownOperationError,
    ValidationError,
)
from repro.obs.context import TraceContext, trace_context_of
from repro.obs.explain import ExplainRecorder
from repro.obs.flight import FlightRecorder
from repro.obs.logging import get_logger
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.telemetry import TelemetryRing, TelemetrySample
from repro.obs.tracer import get_tracer
from repro.placement.config import EngineConfig
from repro.placement.sharding import ShardedFleet
from repro.service.errors import (
    attach_error,
    envelope,
    envelope_of_exception,
    error_fields,
)
from repro.service.metrics import CONTENT_TYPE, ServiceMetrics
from repro.service.persistence import (
    RequestJournal,
    SnapshotManager,
    read_journal,
)
from repro.service.replication import apply_entry
from repro.service.protocol import (
    OPS,
    encode,
    negotiate_version,
    parse_batch_records,
    parse_request,
)
from repro.service.state import (
    ClusterStateStore,
    snapshot_meta,
)
from repro.simulation.admission import offer
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["AllocationDaemon", "DaemonTCPServer", "serve_stdio",
           "serve_tcp", "start_metrics_server"]

JOURNAL_NAME = "journal.jsonl"

#: Operations that mutate cluster state — these take the commit lock
#: and count against the bounded ingest window.
MUTATING_OPS = ("place", "place_batch", "tick", "fail_server",
                "recover_server", "consolidate")

#: Read-only operations served without the commit lock.
READ_OPS = ("stats", "metrics", "telemetry", "dump_debug", "ping")


def _requested_version(request: object) -> int:
    """Best-effort read of the version a *failing* request asked for.

    Decides which error shape the client can read — the v3 envelope or
    the legacy string — so even rejected requests answer in the
    caller's dialect. Anything unparseable is treated as a v1 reader
    (the legacy shape is the conservative choice).
    """
    message = request
    if isinstance(message, str):
        try:
            message = json.loads(message)
        except ValueError:
            return 1
    if isinstance(message, Mapping):
        version = message.get("v", 1)
        if isinstance(version, int) and not isinstance(version, bool):
            return version
    return 1


class AllocationDaemon:
    """Serves a stream of placement requests against live cluster state.

    Parameters
    ----------
    store:
        The live cluster state to allocate into.
    algorithm / seed:
        Registry name and seed of the placement algorithm.
    algo_params:
        Extra keyword parameters forwarded to the allocator constructor
        (``repro serve --algo-param k=v``); they override the
        daemon-level ``seed``/``policy`` defaults and are persisted in
        snapshot metadata so :meth:`restore` rebuilds the same allocator.
    max_delay:
        Admission behaviour when nothing fits: ``0`` rejects outright,
        ``k > 0`` queues the request up to ``k`` ticks later (the first
        shifted start that fits wins).
    data_dir:
        Directory for the request journal and snapshots; ``None`` runs
        the daemon without durability.
    snapshot_every:
        Checkpoint the store after this many placements (0 disables
        periodic snapshots; a final one is still written on shutdown).
    fsync:
        Whether the journal fsyncs each entry (disable only in tests).
    shards:
        Partition count of the fleet's
        :class:`~repro.placement.sharding.ShardedFleet`; every
        placement's feasibility scan fans out across the shards
        (``repro serve --shards``). The reduction is deterministic, so
        any shard count yields identical placements.
    max_workers:
        Thread-pool width for the shard scans (defaults to the shard
        count; ``repro serve --workers``).
    scan_processes:
        Process-pool width for the shard scans (``repro serve
        --scan-processes``). With ``N > 0`` (and more than one shard)
        each placement's feasibility scan fans out over ``N`` worker
        *processes*, each holding a bit-exact replica of the cluster
        store kept in sync through the journal-entry stream
        (:mod:`repro.service.workers`) — candidate scans escape the
        GIL while the deterministic ``(score, scan ordinal)`` fold
        keeps placements bit-identical to the in-process scan. ``0``
        (the default) keeps scans in-process.
    max_inflight:
        Bounded ingest: at most this many mutating requests in flight
        before the daemon answers ``overloaded`` with a ``retry_after``
        hint. ``0`` disables the bound.
    consolidate_every:
        Run a consolidation episode at every Nth tick boundary
        (``repro serve --consolidate-epoch``); ``0`` disables the
        epoch trigger.
    frag_threshold:
        Run a consolidation episode whenever the fleet's fragmentation
        reading reaches this value in ``(0, 1]`` (``repro serve
        --frag-threshold``); ``None`` disables the threshold trigger.
        Both triggers fire at most one episode per tick; the
        ``consolidate`` op forces one regardless.
    migration_cost_per_gb:
        Per-move migration energy charged per GByte of VM memory by the
        episode planner.
    migration_k:
        When set, each migrating remainder is bid to at most this many
        feasible targets (the planner's k-sampling queue) — bounds
        episode latency on large fleets.
    slo:
        The latency/availability objectives this daemon is held to
        (:class:`~repro.obs.slo.SLOConfig`; default objectives when
        ``None``). Burn rates are exported as ``repro_slo_*`` metrics
        and served by the ``telemetry`` op / ``repro slo``.
    telemetry_capacity:
        Tick capacity of the fleet telemetry ring (one sample per
        cluster tick, newest kept; 0 disables telemetry sampling
        entirely).
    flight_capacity:
        Entry capacity of the flight recorder (the last N request/
        response tuples served by ``dump_debug`` and dumped on
        unhandled errors; 0 disables recording).
    """

    def __init__(self, store: ClusterStateStore, *,
                 algorithm: str = "min-energy", seed: int | None = None,
                 algo_params: Mapping[str, object] | None = None,
                 max_delay: int = 0, data_dir: str | Path | None = None,
                 snapshot_every: int = 100, fsync: bool = True,
                 shards: int = 1, max_workers: int | None = None,
                 scan_processes: int = 0,
                 max_inflight: int = 64,
                 consolidate_every: int = 0,
                 frag_threshold: float | None = None,
                 migration_cost_per_gb: float = 5.0,
                 migration_k: int | None = None,
                 slo: SLOConfig | None = None,
                 telemetry_capacity: int = 1024,
                 flight_capacity: int = 256,
                 _restored_seq: int | None = None) -> None:
        if max_delay < 0:
            raise ValidationError(
                f"max_delay must be >= 0, got {max_delay}")
        if snapshot_every < 0:
            raise ValidationError(
                f"snapshot_every must be >= 0, got {snapshot_every}")
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if scan_processes < 0:
            raise ValidationError(
                f"scan_processes must be >= 0, got {scan_processes}")
        if max_inflight < 0:
            raise ValidationError(
                f"max_inflight must be >= 0, got {max_inflight}")
        if consolidate_every < 0:
            raise ValidationError(
                f"consolidate_every must be >= 0, got {consolidate_every}")
        if frag_threshold is not None and \
                not 0.0 < float(frag_threshold) <= 1.0:
            raise ValidationError(
                f"frag_threshold must be in (0, 1], got {frag_threshold}")
        self.store = store
        algo_params = dict(algo_params or {})
        # The journaled config must be JSON: an EngineConfig passed
        # programmatically is stored as its spec string (make_allocator
        # parses it back), so restores rebuild the same engine + kernel.
        engine_param = algo_params.get("engine")
        if isinstance(engine_param, EngineConfig):
            algo_params["engine"] = engine_param.spec
        self.config = {"algorithm": algorithm, "seed": seed,
                       "algo_params": algo_params,
                       "max_delay": max_delay,
                       "snapshot_every": snapshot_every,
                       "shards": shards,
                       "scan_processes": scan_processes,
                       "max_inflight": max_inflight,
                       "consolidate_every": consolidate_every,
                       "frag_threshold": None if frag_threshold is None
                       else float(frag_threshold),
                       "migration_cost_per_gb": float(migration_cost_per_gb),
                       "migration_k": migration_k,
                       "slo": None if slo is None else slo.to_record(),
                       "telemetry_capacity": telemetry_capacity,
                       "flight_capacity": flight_capacity}
        self.slo = SLOTracker(slo)
        self.telemetry = TelemetryRing(telemetry_capacity)
        self.flight = FlightRecorder(flight_capacity)
        self._last_sampled_tick = -1
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.planner = MigrationPlanner(float(migration_cost_per_gb),
                                        k_sample=migration_k)
        self.monitor = FragmentationMonitor()
        self._last_consolidated_tick = 0
        # Explicit --algo-param values win over the daemon-level defaults.
        params: dict[str, object] = {"seed": seed, "policy": store.policy,
                                     **algo_params}
        self.allocator = make_allocator(algorithm, **params)
        # An engine-level shard hint is the default when the daemon got
        # no explicit shard count of its own.
        if shards == 1 and self.allocator.engine_config.shards:
            shards = self.allocator.engine_config.shards
            self.config["shards"] = shards
        self.metrics = ServiceMetrics()
        self.metrics.register_algorithm(algorithm)
        from repro import __version__  # deferred: repro imports service
        self.metrics.set_build_info(version=__version__,
                                    algorithm=algorithm,
                                    engine=store.engine_config.spec)
        self._max_workers = max_workers
        self.fleet: ShardedFleet | None = None
        #: The scan worker pool (process-per-shard replicas); started
        #: lazily by :meth:`_rebuild_fleet` when ``scan_processes > 0``.
        self._pool = None
        # The fleet scans only non-failed servers (a restored snapshot
        # may already carry dead ones), so build it through the same
        # path fail/recover events use.
        self._rebuild_fleet()
        self.closed = False
        #: Serializes placement decisions and state mutation; read-only
        #: ops (stats/metrics/ping) never take it.
        self._commit_lock = threading.Lock()
        self._ingest = threading.BoundedSemaphore(max_inflight) \
            if max_inflight > 0 else None
        self._placed_since_snapshot = 0
        self._shutdown_hooks: list = []
        self.journal: RequestJournal | None = None
        self.snapshots: SnapshotManager | None = None
        if data_dir is not None:
            data_dir = Path(data_dir)
            self.snapshots = SnapshotManager(data_dir)
            self.journal = RequestJournal(data_dir / JOURNAL_NAME,
                                          fsync=fsync)
            if _restored_seq is None:
                if self.journal.next_seq > 1:
                    raise ValidationError(
                        f"{data_dir} already holds a journal; use "
                        f"AllocationDaemon.restore() to resume it")
                # Seed the journal with the starting state so a crash
                # before the first snapshot is still recoverable.
                self.journal.append({
                    "op": "init",
                    "snapshot": store.to_snapshot(self._meta(seq=1)),
                })
        self._data_dir = None if data_dir is None else Path(data_dir)
        #: ``/healthz`` & ``/readyz`` gate: False while a restore is
        #: still replaying the journal tail (see :meth:`restore`).
        self.ready = True
        self._sample_telemetry()

    def _rebuild_fleet(self) -> None:
        """(Re)build the sharded fleet over the *live* servers.

        Failure and recovery change the scannable fleet, so both paths
        funnel through here: the old fleet (and its scan pool) is
        closed, a fresh one is built over
        :meth:`ClusterStateStore.live_states`, and the allocator is
        re-prepared so its candidate index covers exactly the servers
        it may choose. Note fleet positions are scan positions, not
        server ids, once a server is dead — commit paths translate via
        ``fleet.position_of``.
        """
        if self.fleet is not None:
            self.fleet.close()
        live = self.store.live_states()
        shards = int(self.config["shards"])
        if int(self.config["scan_processes"]) > 0 and shards > 1:
            from repro.service.workers import WorkerFleet
            self.fleet = WorkerFleet(
                live, shards=shards, pool=self._ensure_worker_pool(),
                max_workers=self._max_workers,
                on_scan_time=self.metrics.observe_shard_scan)
        else:
            self.fleet = ShardedFleet(
                live, shards=shards,
                max_workers=self._max_workers,
                on_scan_time=self.metrics.observe_shard_scan)
        self.allocator.prepare(live)

    def _ensure_worker_pool(self):
        """Start the scan worker pool from the store's *current* state.

        The pool starts at most once per daemon: each worker process
        boots a store replica from a snapshot taken here, and every
        subsequent mutation (including restore's journal-tail replay)
        is streamed to the workers through :meth:`_pool_apply`, so the
        replicas track the primary bit-for-bit from any starting point.
        """
        if self._pool is None:
            from repro.service.workers import WorkerPool
            self._pool = WorkerPool(
                self.store.to_snapshot(),
                algorithm=str(self.config["algorithm"]),
                seed=self.config["seed"],
                algo_params=self.config["algo_params"],
                processes=int(self.config["scan_processes"]))
        return self._pool

    def _pool_apply(self, entry: Mapping[str, object]) -> None:
        """Stream one committed journal-shaped entry to every scan
        worker replica. Pipe order is the commit order (all mutating
        ops hold the commit lock), so each worker applies the mutation
        before it can see any later scan request."""
        if self._pool is not None:
            self._pool.apply(entry)

    # -- durability --------------------------------------------------------

    def _meta(self, seq: int) -> dict[str, object]:
        return {"seq": seq, "config": dict(self.config),
                "counters": self.metrics.to_meta(),
                "last_consolidated_tick": self._last_consolidated_tick}

    def _last_seq(self) -> int:
        return self.journal.next_seq - 1 if self.journal else 0

    def write_snapshot(self) -> Path | None:
        """Checkpoint the store now; returns the snapshot path."""
        if self.snapshots is None:
            return None
        seq = self._last_seq()
        document = self.store.to_snapshot(self._meta(seq))
        self._placed_since_snapshot = 0
        return self.snapshots.save(document, seq)

    def _maybe_snapshot(self) -> None:
        every = int(self.config["snapshot_every"])
        if self.snapshots is not None and every > 0 and \
                self._placed_since_snapshot >= every:
            self.write_snapshot()

    @classmethod
    def restore(cls, data_dir: str | Path, *, fsync: bool = True,
                on_built: Callable[["AllocationDaemon"], None]
                | None = None) -> "AllocationDaemon":
        """Rebuild a daemon from ``data_dir``'s snapshot + journal tail.

        Replayed placements apply the journalled decision directly (no
        allocator re-run), so the restored state is identical even when
        the original decisions came from a randomized allocator.
        Journal entries carry the trace ids of the original requests;
        replay reuses the *recorded* ids (logs and spans correlate to
        the original episodes) and never re-generates them.

        ``on_built`` is invoked with the daemon after construction but
        *before* the journal tail replays, while :attr:`ready` is still
        False — the CLI uses it to bring ``/healthz``/``/readyz`` up
        early so probes report not-ready during the restore.
        """
        data_dir = Path(data_dir)
        document = SnapshotManager(data_dir).load_latest()
        entries = list(read_journal(data_dir / JOURNAL_NAME))
        if document is None:
            init = next((e for e in entries if e.get("op") == "init"), None)
            if init is None:
                raise ValidationError(
                    f"{data_dir}: no snapshot and no journal init entry; "
                    f"nothing to restore")
            document = init["snapshot"]
        meta = snapshot_meta(document)
        config = meta.get("config", {})
        if not isinstance(config, Mapping):
            raise ValidationError(f"{data_dir}: malformed snapshot config")
        store = ClusterStateStore.from_snapshot(document)
        covered = int(meta.get("seq", 0))
        algo_params = config.get("algo_params")
        if algo_params is not None and not isinstance(algo_params, Mapping):
            raise ValidationError(
                f"{data_dir}: malformed snapshot algo_params")
        slo_record = config.get("slo")
        if slo_record is not None and not isinstance(slo_record, Mapping):
            raise ValidationError(f"{data_dir}: malformed snapshot slo")
        daemon = cls(
            store,
            algorithm=str(config.get("algorithm", "min-energy")),
            seed=config.get("seed"),
            algo_params=algo_params,
            max_delay=int(config.get("max_delay", 0)),
            snapshot_every=int(config.get("snapshot_every", 100)),
            shards=int(config.get("shards", 1)),
            scan_processes=int(config.get("scan_processes", 0)),
            max_inflight=int(config.get("max_inflight", 64)),
            consolidate_every=int(config.get("consolidate_every", 0)),
            frag_threshold=config.get("frag_threshold"),
            migration_cost_per_gb=float(
                config.get("migration_cost_per_gb", 5.0)),
            migration_k=config.get("migration_k"),
            slo=None if slo_record is None
            else SLOConfig.from_record(slo_record),
            telemetry_capacity=int(config.get("telemetry_capacity", 1024)),
            flight_capacity=int(config.get("flight_capacity", 256)),
            data_dir=data_dir, fsync=fsync, _restored_seq=covered)
        counters = meta.get("counters")
        if isinstance(counters, Mapping):
            daemon.metrics.restore_meta(counters)
        # The trigger watermark rides in the meta (a snapshot taken
        # right after an episode leaves no consolidate entry to replay),
        # so a restored daemon never re-fires at an already-done tick.
        daemon._last_consolidated_tick = int(
            meta.get("last_consolidated_tick", 0))
        daemon.ready = False
        if on_built is not None:
            on_built(daemon)
        for entry in entries:
            if int(entry["seq"]) > covered:
                daemon._replay(entry)
        daemon.ready = True
        daemon._sample_telemetry()
        return daemon

    def _replay(self, entry: Mapping[str, object]) -> None:
        op = entry.get("op")
        if op == "init":
            return
        logger = get_logger()
        if logger.enabled:
            # Replay logs carry the *recorded* trace ids verbatim — a
            # restored daemon's log tells the original run's story.
            fields: dict[str, object] = {"op": str(op),
                                         "seq": entry.get("seq")}
            for key in ("trace_id", "request_id"):
                if key in entry:
                    fields[key] = entry[key]
            logger.info("service.replay", **fields)
        # The store-level application (recorded decisions, one atomic
        # journal group per batch/failure/episode) is shared with the
        # scan worker replicas — see repro.service.replication.
        applied = apply_entry(self.store, entry)
        self._pool_apply(entry)
        for decision, delay in applied.placements:
            self.metrics.observe_replayed(
                decision, delay, algorithm=str(self.config["algorithm"]))
        if op == "fail_server":
            report = applied.report
            self.metrics.observe_failure(replaced=report.replaced,
                                         lost=len(report.lost))
        elif op == "consolidate":
            report = applied.report
            self._last_consolidated_tick = report.time
            self.metrics.observe_consolidation(
                moves=report.migrations,
                servers_freed=report.servers_freed,
                energy_saved=report.energy_saved)
        if applied.fleet_changed:
            self._rebuild_fleet()

    # -- request handling --------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Serve one raw protocol line; always returns a response line."""
        tracer = get_tracer()
        with tracer.span("service.ingest"):
            try:
                message = parse_request(line)
            except ServiceError as exc:
                self.metrics.observe_error()
                payload: dict[str, object] = {"ok": False}
                attach_error(payload, envelope_of_exception(exc),
                             _requested_version(line))
                if isinstance(exc, ProtocolVersionError):
                    payload["supported_versions"] = list(exc.supported)
                if isinstance(exc, UnknownOperationError):
                    payload["supported_ops"] = list(exc.supported)
                return encode(payload)
        response = self.handle(message)
        with tracer.span("service.respond"):
            return encode(response)

    def handle(self, message: Mapping[str, object]) -> dict[str, object]:
        """Serve one parsed request; never raises on domain errors.

        Responses echo the request's ``"v"`` field when one was sent
        (v1 clients that omit it keep getting byte-identical replies),
        and echo ``trace_id``/``request_id`` whenever the request
        carried either — id-less requests are still correlated
        internally (spans, journal, logs) with daemon-minted ids.
        """
        op = message.get("op")
        try:
            version = negotiate_version(message)
        except ProtocolVersionError as exc:
            self.metrics.observe_error()
            response = attach_error({"ok": False, "op": op},
                                    envelope_of_exception(exc),
                                    _requested_version(message))
            response["supported_versions"] = list(exc.supported)
            return response
        try:
            ctx = trace_context_of(message)
        except ServiceError as exc:
            self.metrics.observe_error()
            return attach_error({"ok": False, "op": op},
                                envelope_of_exception(exc), version)
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("service.request", op=str(op),
                         trace_id=ctx.trace_id,
                         request_id=ctx.request_id) as span:
            response = self._guarded(op, message, ctx, version)
            ok = bool(response.get("ok"))
            span.set(ok=ok)
        latency = perf_counter() - started
        self._observe_outcome(op, message, response, ctx, latency, ok)
        if "trace_id" in message or "request_id" in message:
            response.setdefault("trace_id", ctx.trace_id)
            response.setdefault("request_id", ctx.request_id)
        if "v" in message:
            response.setdefault("v", message["v"])
        return response

    def _observe_outcome(self, op: object, message: Mapping[str, object],
                         response: Mapping[str, object],
                         ctx: TraceContext, latency: float,
                         ok: bool) -> None:
        """Feed one finished request to the SLO tracker, the flight
        recorder and the structured log."""
        self.slo.observe(latency, ok=ok)
        if ok:
            error = None
        else:
            # The envelope and the legacy string both reduce to one
            # message for the black box / log line.
            fields_view = error_fields(response)
            error = fields_view.message if fields_view is not None \
                else str(response.get("error"))
        self.flight.record(
            op=str(op), trace_id=ctx.trace_id,
            request_id=ctx.request_id, ok=ok, latency_ms=latency * 1e3,
            request=message, response=response, error=error)
        logger = get_logger()
        if logger.enabled:
            fields: dict[str, object] = {
                "op": str(op), "trace_id": ctx.trace_id,
                "request_id": ctx.request_id,
                "latency_ms": round(latency * 1e3, 3)}
            if "decision" in response:
                fields["decision"] = response["decision"]
            if ok:
                logger.info("service.request", **fields)
            else:
                logger.error("service.request", error=error, **fields)

    def _guarded(self, op: object, message: Mapping[str, object],
                 ctx: TraceContext, version: int = 1
                 ) -> dict[str, object]:
        """Apply the ingest bound, route to the right lock, dispatch."""
        gate = self._ingest if op in MUTATING_OPS else None
        if gate is not None and not gate.acquire(blocking=False):
            self.metrics.observe_overload()
            return attach_error(
                {"ok": False, "op": op},
                envelope("overloaded", "overloaded",
                         retry_after=self._retry_after()), version)
        mutating = op in MUTATING_OPS
        if mutating:
            with self._inflight_lock:
                self._inflight += 1
        try:
            if op in READ_OPS and not self.closed:
                return self._dispatch(op, message, ctx)
            with self._commit_lock:
                response = self._dispatch(op, message, ctx)
                if mutating:
                    self._sample_telemetry()
                return response
        except ReproError as exc:
            self.metrics.observe_error()
            payload: dict[str, object] = {"ok": False, "op": op}
            attach_error(payload, envelope_of_exception(exc), version)
            # Structured self-describing errors, mirroring the
            # version-negotiation shape: tell the client what this
            # daemon *does* speak instead of a bare string.
            if isinstance(exc, ProtocolVersionError):
                payload["supported_versions"] = list(exc.supported)
            if isinstance(exc, UnknownOperationError):
                payload["supported_ops"] = list(exc.supported)
            return payload
        except Exception as exc:
            # An unhandled error is a daemon bug: preserve the raise,
            # but first capture the black box for the post-mortem.
            self._dump_on_error(exc, op, ctx)
            raise
        finally:
            if mutating:
                with self._inflight_lock:
                    self._inflight -= 1
            if gate is not None:
                gate.release()

    def _dump_on_error(self, exc: BaseException, op: object,
                       ctx: TraceContext) -> None:
        """Dump the flight recorder on an unhandled error (best effort)."""
        logger = get_logger()
        if logger.enabled:
            logger.error("service.unhandled_error", op=str(op),
                         trace_id=ctx.trace_id,
                         request_id=ctx.request_id,
                         exception=f"{type(exc).__name__}: {exc}")
        if self._data_dir is None or not self.flight.enabled:
            return
        try:
            name = f"flight-dump-{ctx.trace_id}.json"
            self.flight.dump_to(
                self._data_dir / name,
                reason=f"unhandled {type(exc).__name__} in op {op!r}")
        except OSError:  # pragma: no cover - best-effort black box
            pass

    def _retry_after(self) -> float:
        """A resend hint under overload: the observed median decision
        latency scaled by the inflight window, clamped to a sane range."""
        p50 = self.metrics.latency.quantile(0.5) or 0.001
        window = int(self.config["max_inflight"]) or 1
        return round(min(5.0, max(0.01, p50 * window)), 4)

    def _dispatch(self, op: object, message: Mapping[str, object],
                  ctx: TraceContext) -> dict[str, object]:
        if self.closed:
            raise UnavailableError("daemon is shut down")
        if op == "place":
            return self._handle_place(message, ctx)
        if op == "place_batch":
            return self._handle_place_batch(message, ctx)
        if op == "tick":
            return self._handle_tick(message, ctx)
        if op == "fail_server":
            return self._handle_fail_server(message, ctx)
        if op == "recover_server":
            return self._handle_recover_server(message, ctx)
        if op == "consolidate":
            return self._handle_consolidate(message, ctx)
        if op == "stats":
            return self._handle_stats()
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "text": self.render_metrics()}
        if op == "telemetry":
            return self._handle_telemetry(message)
        if op == "dump_debug":
            return {"ok": True, "op": "dump_debug",
                    "count": len(self.flight),
                    "capacity": self.flight.capacity,
                    "records": self.flight.dump()}
        if op == "snapshot":
            path = self.write_snapshot()
            if path is None:
                raise ServiceError(
                    "daemon runs without a data_dir; nothing to snapshot")
            return {"ok": True, "op": "snapshot", "path": str(path)}
        if op == "ping":
            return {"ok": True, "op": "ping", "clock": self.store.clock}
        if op == "shutdown":
            return self._handle_shutdown()
        # Reached by direct dict-API handle() calls that bypassed
        # parse_request: answer with the same structured shape.
        raise UnknownOperationError(
            f"unknown op {op!r}; this daemon supports: {list(OPS)}",
            op=op, supported=OPS)

    def _handle_telemetry(self, message: Mapping[str, object]
                          ) -> dict[str, object]:
        last = message.get("last")
        if last is not None and (isinstance(last, bool)
                                 or not isinstance(last, int) or last < 1):
            raise ServiceError(
                f"telemetry field 'last' must be a positive integer, "
                f"got {last!r}")
        return {"ok": True, "op": "telemetry",
                "clock": self.store.clock,
                "enabled": self.telemetry.enabled,
                "capacity": self.telemetry.capacity,
                "samples": self.telemetry.to_records(last),
                "slo": self.slo.report()}

    def _sample_telemetry(self) -> None:
        """Record one fleet sample when the cluster tick has moved.

        Called on the commit path (under the commit lock), so the
        per-request cost while the tick is unchanged is one integer
        compare; the full sample — including the fragmentation scan —
        runs once per tick.
        """
        if not self.telemetry.enabled:
            return
        clock = self.store.clock
        if clock == self._last_sampled_tick:
            return
        self._last_sampled_tick = clock
        store = self.store
        fleet = store.fleet  # O(1) incrementally-maintained totals
        self.telemetry.record(TelemetrySample(
            tick=clock,
            servers_active=fleet.active,
            servers_asleep=fleet.asleep,
            servers_failed=store.servers_failed(),
            running_vms=fleet.running_vms,
            fleet_power=fleet.power,
            energy_accumulated=store.energy_accumulated,
            fragmentation=self.monitor.reading(store).fragmentation,
            inflight=self._inflight,
            pending=self.metrics.delayed,
            placed=self.metrics.requests["placed"],
            rejected=self.metrics.requests["rejected"]))

    def _handle_place(self, message: Mapping[str, object],
                      ctx: TraceContext) -> dict[str, object]:
        vm = message.get("_vm")
        if vm is None:  # direct dict call without parse_request
            try:
                vm = vm_from_record(message["vm"])
            except (TypeError, KeyError, ValueError) as exc:
                raise ServiceError(f"malformed vm record: {exc}") from exc
        explain = message.get("explain", False)
        if not isinstance(explain, bool):
            raise ServiceError(
                f"place request field 'explain' must be a boolean, "
                f"got {explain!r}")
        recorder = ExplainRecorder() if explain else None
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("service.place", vm_id=vm.vm_id) as span:
            if vm.start > self.store.clock:
                with tracer.span("service.advance", to=vm.start):
                    self.store.advance_to(vm.start)
            with tracer.span("service.allocate",
                             algorithm=str(self.config["algorithm"])):
                decision = offer(vm, self.fleet, self.allocator,
                                 max_delay=int(self.config["max_delay"]),
                                 recorder=recorder)
            response: dict[str, object] = {"ok": True, "op": "place",
                                           "vm_id": vm.vm_id}
            entry: dict[str, object] = {"op": "place",
                                        **ctx.to_fields(),
                                        "vm": vm_to_record(vm)}
            if decision is None:
                response["decision"] = entry["decision"] = "rejected"
            else:
                server_id = decision.state.server.server_id
                with tracer.span("service.commit", server_id=server_id):
                    # Fleet positions are scan positions, not server
                    # ids, once a failed server is filtered out.
                    position = self.fleet.position_of(decision.state)
                    with self.fleet.lock_for(position):
                        delta = self.store.commit(decision.vm, server_id)
                response.update(decision="placed", server_id=server_id,
                                delay=decision.delay, energy_delta=delta)
                entry.update(decision="placed", server_id=server_id,
                             delay=decision.delay)
                self._placed_since_snapshot += 1
            latency = perf_counter() - started
            span.set(decision=str(response["decision"]))
            response["latency_ms"] = latency * 1e3
            if recorder is not None and recorder.last is not None:
                response["explanation"] = recorder.last.to_record()
            if self.journal is not None:
                with tracer.span("service.journal"):
                    self.journal.append(entry)
            self._pool_apply(entry)
            self.metrics.observe_request(
                str(response["decision"]), latency,
                int(response.get("delay", 0)),
                algorithm=str(self.config["algorithm"]),
                candidates=self.allocator.candidates_feasible)
            if response["decision"] == "placed":
                self._maybe_snapshot()
        self._maybe_consolidate()
        return response

    def _handle_place_batch(self, message: Mapping[str, object],
                            ctx: TraceContext) -> dict[str, object]:
        vms = message.get("_vms")
        if vms is None:  # direct dict call without parse_request
            vms = parse_batch_records(message.get("vms"))
        # Whole-batch validation before any mutation: a duplicate vm_id
        # (within the batch or against committed placements) would fail
        # mid-batch and tear the journal group, so reject it up front.
        seen: set[int] = set()
        for vm in vms:
            if vm.vm_id in seen:
                raise ServiceError(
                    f"place_batch carries vm_id {vm.vm_id} twice")
            seen.add(vm.vm_id)
            if self.store.is_placed(vm.vm_id):
                raise ServiceError(
                    f"vm_id {vm.vm_id} is already placed")
        tracer = get_tracer()
        started = perf_counter()
        algorithm = str(self.config["algorithm"])
        max_delay = int(self.config["max_delay"])
        # Batch decisions follow the paper's online order (start, end,
        # id) — the same sequence the VMs would take as individual
        # requests — while the response maps back to request order.
        order = sorted(range(len(vms)),
                       key=lambda i: (vms[i].start, vms[i].end,
                                      vms[i].vm_id))
        results: list[dict[str, object] | None] = [None] * len(vms)
        # Journal entries are only materialized when there is a journal
        # — building per-VM records for an in-memory daemon would eat
        # the round-trip savings batching exists to provide.
        entries: list[dict[str, object]] | None = [] \
            if self.journal is not None or self._pool is not None else None
        total_delta = 0.0
        placed = delayed = 0
        with tracer.span("service.place_batch", batch=len(vms)) as span:
            self.metrics.observe_batch(len(vms))
            for i in order:
                vm = vms[i]
                if vm.start > self.store.clock:
                    self.store.advance_to(vm.start)
                item_started = perf_counter()
                decision = offer(vm, self.fleet, self.allocator,
                                 max_delay=max_delay)
                item: dict[str, object] = {"vm_id": vm.vm_id}
                if decision is None:
                    item.update(decision="rejected", server_id=None,
                                delay=0, energy_delta=0.0)
                else:
                    server_id = decision.state.server.server_id
                    position = self.fleet.position_of(decision.state)
                    with self.fleet.lock_for(position):
                        delta = self.store.commit(decision.vm, server_id)
                    item.update(decision="placed", server_id=server_id,
                                delay=decision.delay, energy_delta=delta)
                    total_delta += delta
                    placed += 1
                    if decision.delay:
                        delayed += 1
                if entries is not None:
                    entry: dict[str, object] = {"vm": vm_to_record(vm),
                                                "decision":
                                                    item["decision"]}
                    if decision is not None:
                        entry.update(
                            server_id=item["server_id"],
                            delay=item["delay"])
                    entries.append(entry)
                    # Worker replicas need every commit *before* the
                    # next item's scan — decision i+1 observes commit i
                    # — so batch items stream per-item, even though the
                    # journal records the batch as one atomic group.
                    self._pool_apply({"op": "place", **entry})
                results[i] = item
                self.metrics.observe_item(
                    perf_counter() - item_started,
                    candidates=self.allocator.candidates_feasible)
            self.metrics.observe_batch_outcome(
                placed=placed, rejected=len(vms) - placed,
                delayed=delayed, algorithm=algorithm)
            span.set(placed=placed)
            if entries and self.journal is not None:
                # The trace ids ride the group header — one id for the
                # whole batch episode, replayed verbatim on restore.
                with tracer.span("service.journal"):
                    self.journal.append({"op": "place_batch",
                                         **ctx.to_fields(),
                                         "decisions": entries})
            self._placed_since_snapshot += placed
            if placed:
                self._maybe_snapshot()
        self._maybe_consolidate()
        return {"ok": True, "op": "place_batch", "count": len(vms),
                "placed": placed, "rejected": len(vms) - placed,
                "decisions": results, "energy_delta": total_delta,
                "latency_ms": (perf_counter() - started) * 1e3}

    def _handle_tick(self, message: Mapping[str, object],
                     ctx: TraceContext) -> dict[str, object]:
        now = message.get("now")
        if isinstance(now, bool) or not isinstance(now, int) or now < 0:
            raise ServiceError(
                f"tick request needs a non-negative integer 'now', "
                f"got {now!r}")
        if now > self.store.clock:
            self.store.advance_to(now)
            entry = {"op": "tick", **ctx.to_fields(), "now": now}
            if self.journal is not None:
                self.journal.append(entry)
            self._pool_apply(entry)
            self._maybe_consolidate()
        return {"ok": True, "op": "tick", "clock": self.store.clock,
                "servers_active": self.store.servers_active(),
                "running_vms": self.store.running_vms()}

    @staticmethod
    def _server_id_of(message: Mapping[str, object],
                      op: str) -> int:
        server_id = message.get("server_id")
        if isinstance(server_id, bool) or not isinstance(server_id, int) \
                or server_id < 0:
            raise ServiceError(
                f"{op} request needs a non-negative integer 'server_id', "
                f"got {server_id!r}")
        return server_id

    def _handle_fail_server(self, message: Mapping[str, object],
                            ctx: TraceContext) -> dict[str, object]:
        server_id = self._server_id_of(message, "fail_server")
        time = message.get("time")
        if time is None:
            # Default: the failure is observed now. Clock 0 (nothing
            # placed yet) rounds up to the first real tick.
            time = max(self.store.clock, 1)
        elif isinstance(time, bool) or not isinstance(time, int) \
                or time < 1:
            raise ServiceError(
                f"fail_server field 'time' must be a positive integer, "
                f"got {time!r}")
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("service.fail_server", server_id=server_id,
                         time=time) as span:
            report = self.store.fail_server(server_id, time,
                                            recovery=self.allocator)
            self._rebuild_fleet()
            span.set(killed=report.killed, replaced=report.replaced,
                     lost=len(report.lost))
            entry = {"op": "fail_server", **ctx.to_fields(),
                     "server_id": server_id,
                     "time": report.time,
                     "replacements": [r.to_record()
                                      for r in report.replacements]}
            if self.journal is not None:
                # One atomic journal group per failure: the episode's
                # every re-placement restores together or not at all.
                with tracer.span("service.journal"):
                    self.journal.append(entry)
            self._pool_apply(entry)
            self.metrics.observe_failure(replaced=report.replaced,
                                         lost=len(report.lost))
            self._placed_since_snapshot += report.replaced
            if report.replaced:
                self._maybe_snapshot()
        return {
            "ok": True, "op": "fail_server", "server_id": server_id,
            "time": report.time, "killed": report.killed,
            "replaced": report.replaced,
            "lost": [vm.vm_id for vm in report.lost],
            "victim_delta": report.victim_delta,
            "energy_delta": report.energy_delta,
            "replacements": [
                {"vm_id": r.vm.vm_id,
                 "head_id": r.head.vm_id if r.head is not None else None,
                 "remainder_id": r.remainder.vm_id,
                 "server_id": r.server_id,
                 "energy_delta": r.energy_delta}
                for r in report.replacements],
            "latency_ms": (perf_counter() - started) * 1e3,
        }

    # -- consolidation -----------------------------------------------------

    def _run_consolidation(self, time: int,
                           ctx: TraceContext) -> tuple[object, float]:
        """One consolidation episode at tick ``time``: plan against the
        store, journal the moves as one atomic group, refresh the fleet
        and the metrics. Returns ``(report, duration_seconds)``."""
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("service.consolidate", time=time,
                         trace_id=ctx.trace_id) as span:
            report = self.store.consolidate(time, planner=self.planner)
            if report.moves:
                # Drained sources were re-booked as fresh state objects;
                # the fleet must scan the new ones.
                self._rebuild_fleet()
            self._last_consolidated_tick = report.time
            span.set(migrations=report.migrations,
                     servers_freed=report.servers_freed)
            entry = {"op": "consolidate", **ctx.to_fields(),
                     "time": report.time,
                     "moves": [move.to_record()
                               for move in report.moves]}
            if self.journal is not None:
                # One atomic journal group per episode: all of its
                # moves restore together or not at all. Zero-move
                # episodes are journaled too — an on-demand episode may
                # still have advanced the clock.
                with tracer.span("service.journal"):
                    self.journal.append(entry)
            self._pool_apply(entry)
            duration = perf_counter() - started
            self.metrics.observe_consolidation(
                moves=report.migrations,
                servers_freed=report.servers_freed,
                energy_saved=report.energy_saved,
                duration_seconds=duration)
            self._placed_since_snapshot += report.migrations
            if report.migrations:
                self._maybe_snapshot()
        return report, duration

    def _maybe_consolidate(self) -> None:
        """Fire the background consolidation pass when a trigger is due
        — at most one episode per tick, however many triggers match."""
        clock = self.store.clock
        if clock < 1 or clock == self._last_consolidated_tick:
            return
        every = int(self.config["consolidate_every"])
        if every > 0 and \
                clock // every > self._last_consolidated_tick // every:
            # A background episode is its own logical operation: it
            # gets a fresh trace context of its own.
            self._run_consolidation(clock, TraceContext.new())
            return
        threshold = self.config["frag_threshold"]
        if threshold is not None and \
                self.monitor.reading(self.store).fragmentation \
                >= float(threshold):
            self._run_consolidation(clock, TraceContext.new())

    def _handle_consolidate(self, message: Mapping[str, object],
                            ctx: TraceContext) -> dict[str, object]:
        time = message.get("time")
        if time is None:
            # Default: consolidate now. Clock 0 (nothing placed yet)
            # rounds up to the first real tick.
            time = max(self.store.clock, 1)
        elif isinstance(time, bool) or not isinstance(time, int) \
                or time < 1:
            raise ServiceError(
                f"consolidate field 'time' must be a positive integer, "
                f"got {time!r}")
        report, duration = self._run_consolidation(time, ctx)
        return {
            "ok": True, "op": "consolidate", "time": report.time,
            "migrations": report.migrations,
            "servers_freed": report.servers_freed,
            "energy_saved": report.energy_saved,
            "migration_energy": report.migration_energy,
            "moves": [
                {"vm_id": move.vm.vm_id,
                 "head_id": move.head.vm_id,
                 "remainder_id": move.remainder.vm_id,
                 "source_id": move.source_id,
                 "target_id": move.target_id,
                 "saving": move.saving, "cost": move.cost}
                for move in report.moves],
            "latency_ms": duration * 1e3,
        }

    def _handle_recover_server(self, message: Mapping[str, object],
                               ctx: TraceContext) -> dict[str, object]:
        server_id = self._server_id_of(message, "recover_server")
        tracer = get_tracer()
        with tracer.span("service.recover_server", server_id=server_id):
            self.store.recover_server(server_id)
            self._rebuild_fleet()
            entry = {"op": "recover_server", **ctx.to_fields(),
                     "server_id": server_id}
            if self.journal is not None:
                self.journal.append(entry)
            self._pool_apply(entry)
        return {"ok": True, "op": "recover_server",
                "server_id": server_id, "clock": self.store.clock,
                "servers_failed": self.store.servers_failed()}

    def _handle_stats(self) -> dict[str, object]:
        return {
            "ok": True, "op": "stats",
            "clock": self.store.clock,
            "placed": self.metrics.requests["placed"],
            "rejected": self.metrics.requests["rejected"],
            "delayed": self.metrics.delayed,
            "errors": self.metrics.errors,
            "servers_active": self.store.servers_active(),
            "servers_asleep": self.store.servers_asleep(),
            "servers_failed": self.store.servers_failed(),
            "running_vms": self.store.running_vms(),
            "fleet_power": self.store.fleet_power(),
            "energy_accumulated": self.store.energy_accumulated,
            "energy_total": self.store.energy_total(),
            "migration_energy": self.store.migration_energy,
            "migrations": self.metrics.migrations,
        }

    def _handle_shutdown(self) -> dict[str, object]:
        self.write_snapshot()
        if self.journal is not None:
            self.journal.close()
        self.closed = True
        self.fleet.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for hook in self._shutdown_hooks:
            hook()
        return {"ok": True, "op": "shutdown", "clock": self.store.clock}

    def on_shutdown(self, hook) -> None:
        """Register a callable run when a shutdown request is served."""
        self._shutdown_hooks.append(hook)

    def render_metrics(self) -> str:
        """The Prometheus text page (``ServiceMetrics`` is internally
        thread-safe, so scrapes never queue behind placements)."""
        return self.metrics.render(self.store, slo=self.slo)

    def varz(self) -> dict[str, object]:
        """The ``/varz`` JSON document: build info, uptime, live
        gauges, the SLO report and the newest telemetry sample."""
        latest = self.telemetry.latest()
        return {
            "build": dict(self.metrics.build_info),
            "uptime_seconds": round(
                _time.monotonic() - self.metrics.started, 3),
            "ready": self.ready,
            "closed": self.closed,
            "clock": self.store.clock,
            "stats": self._handle_stats(),
            "slo": self.slo.report(),
            "telemetry": None if latest is None else latest.to_record(),
            "flight_records": len(self.flight),
        }


# -- transports -------------------------------------------------------------


def serve_stdio(daemon: AllocationDaemon, in_stream: IO[str],
                out_stream: IO[str]) -> None:
    """Serve JSON-lines over a pair of text streams until EOF/shutdown."""
    for line in in_stream:
        if not line.strip():
            continue
        out_stream.write(daemon.handle_line(line))
        out_stream.flush()
        if daemon.closed:
            break


class _TCPHandler(StreamRequestHandler):
    def handle(self) -> None:
        daemon = self.server.daemon
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            self.wfile.write(daemon.handle_line(line).encode("utf-8"))
            self.wfile.flush()
            if daemon.closed:
                self.server.trigger_shutdown()
                return


class DaemonTCPServer(ThreadingTCPServer):
    """JSON-lines over TCP; one thread per connection, shared daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 daemon: AllocationDaemon) -> None:
        super().__init__(address, _TCPHandler)
        self.daemon = daemon

    def trigger_shutdown(self) -> None:
        """Stop ``serve_forever`` without deadlocking the handler."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve_tcp(daemon: AllocationDaemon, host: str = "127.0.0.1",
              port: int = 0) -> DaemonTCPServer:
    """Bind a TCP server for ``daemon``; the caller runs serve_forever.

    Port 0 binds an ephemeral port — read it back from
    ``server.server_address``.
    """
    return DaemonTCPServer((host, port), daemon)


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        daemon = self.server.daemon
        content_type = "text/plain; charset=utf-8"
        if self.path in ("/", "/metrics"):
            body = daemon.render_metrics().encode("utf-8")
            content_type = CONTENT_TYPE
            status = 200
        elif self.path in ("/healthz", "/readyz"):
            # Not-ready while a restore is still replaying the journal
            # tail, and once the daemon is shut down.
            if daemon.ready and not daemon.closed:
                body, status = b"ok\n", 200
            else:
                body = b"shutting down\n" if daemon.closed \
                    else b"restoring\n"
                status = 503
        elif self.path == "/varz":
            body = (json.dumps(daemon.varz(), indent=2, default=str)
                    + "\n").encode("utf-8")
            content_type = "application/json; charset=utf-8"
            status = 200
        else:
            body = b"not found\n"
            status = 404
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr logging."""


def start_metrics_server(daemon: AllocationDaemon, host: str = "127.0.0.1",
                         port: int = 0) -> ThreadingHTTPServer:
    """Serve ``/metrics``, ``/healthz``, ``/readyz`` and ``/varz`` on a
    background thread."""
    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    server.daemon = daemon
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-metrics")
    thread.start()
    daemon.on_shutdown(lambda: threading.Thread(
        target=server.shutdown, daemon=True).start())
    return server
