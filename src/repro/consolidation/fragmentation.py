"""Fragmentation: how far the live fleet sits from a packed lower bound.

The paper's objective keeps few servers busy, but a long-running
daemon fragments as VMs retire: the *active* server count stays high
while the resident demand would fit on far fewer machines. The monitor
reads the live machine book (power states and resident demand) off a
:class:`~repro.service.state.ClusterStateStore` and compares the
active count against a packed lower bound — the minimum number of
servers the current resident CPU and memory demand could possibly
occupy, given the largest per-server capacities in the cluster. The
gap, normalised to ``[0, 1)``, is the fragmentation score the daemon's
``--frag-threshold`` trigger fires on.

The bound is deliberately optimistic (it ignores item sizes, like the
classic bin-packing volume bound), so ``fragmentation`` over-estimates
what consolidation can recover; the planner's per-move energy gate is
what keeps actual episodes honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.simulation.power_state import PowerState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.state import ClusterStateStore

__all__ = ["FragmentationMonitor", "FragmentationReading"]


@dataclass(frozen=True)
class FragmentationReading:
    """One fragmentation sample of the live fleet.

    ``active_servers`` counts machines currently powered on;
    ``packed_lower_bound`` is the fewest servers the resident demand
    could occupy under the cluster's largest capacities.
    """

    time: int
    active_servers: int
    packed_lower_bound: int
    resident_cpu: float
    resident_mem: float

    @property
    def fragmentation(self) -> float:
        """Fraction of active servers a perfect re-pack could free.

        ``0.0`` when the fleet is idle or already packed; approaches
        ``1.0`` as active servers idle far above the demand bound.
        """
        if self.active_servers == 0:
            return 0.0
        spare = 1.0 - self.packed_lower_bound / self.active_servers
        return max(0.0, spare)


class FragmentationMonitor:
    """Samples a :class:`FragmentationReading` from a live store."""

    def __init__(self) -> None:
        # Largest per-server capacities, cached per cluster identity —
        # the cluster is immutable, so one scan amortises over every
        # reading the monitor ever takes from it.
        self._caps_for: tuple[int, float, float] | None = None

    def _max_capacities(self, store: "ClusterStateStore"
                        ) -> tuple[float, float]:
        cached = self._caps_for
        if cached is not None and cached[0] == id(store.cluster):
            return cached[1], cached[2]
        max_cpu = max((server.cpu_capacity
                       for server in store.cluster), default=0.0)
        max_mem = max((server.memory_capacity
                       for server in store.cluster), default=0.0)
        self._caps_for = (id(store.cluster), max_cpu, max_mem)
        return max_cpu, max_mem

    def reading(self, store: "ClusterStateStore") -> FragmentationReading:
        fleet = getattr(store, "fleet", None)
        if fleet is not None:
            active = fleet.active
            resident_cpu = fleet.resident_cpu
            resident_mem = fleet.resident_mem
        else:
            active = 0
            resident_cpu = 0.0
            resident_mem = 0.0
            for machine in store.machines.values():
                if machine.state is PowerState.ACTIVE:
                    active += 1
                resident_cpu += machine.resident_cpu
                resident_mem += machine.resident_mem
        max_cpu, max_mem = self._max_capacities(store)
        bound = 0
        if resident_cpu > 0 and max_cpu > 0:
            bound = max(bound, math.ceil(resident_cpu / max_cpu - 1e-9))
        if resident_mem > 0 and max_mem > 0:
            bound = max(bound, math.ceil(resident_mem / max_mem - 1e-9))
        return FragmentationReading(
            time=store.clock, active_servers=active,
            packed_lower_bound=bound, resident_cpu=resident_cpu,
            resident_mem=resident_mem)
