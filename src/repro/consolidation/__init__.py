"""Online consolidation: defragmenting a live fleet by migration.

The paper saves energy at *allocation* time; a long-running daemon,
however, only ever adds load, and as VMs retire the fleet fragments —
servers idle at partial load that a re-pack would eliminate. This
package holds the online half of the migration story (the offline
post-pass lives in :mod:`repro.extensions.consolidation` and delegates
its move selection here, so offline and live provably agree):

* :class:`FragmentationMonitor` — a per-epoch fragmentation metric read
  off the live :class:`~repro.service.state.ClusterStateStore`: how many
  servers are active versus the packed lower bound the current resident
  demand actually needs.
* :class:`VictimSelector` — ranks drainable servers by reclaimable
  energy (fewest spanning residents first, then the largest idle-power
  + wake term, expressed in the Eq.-2/3 vocabulary of
  :class:`~repro.obs.explain.CostTerms`).
* :class:`MigrationPlanner` — drains victims through an iterative
  re-place queue: each spanning resident is split at the migration tick
  by :func:`~repro.simulation.recovery.split_remainder`, its remainder
  re-bid across the fleet through :meth:`ServerState.probe`-filtered
  candidates (optionally k-sampled), and the move kept only when the
  Eq.-17 saving beats the configured per-move migration cost.

The live entry point is :meth:`ClusterStateStore.consolidate` /
the daemon's protocol-v2 ``consolidate`` op; each episode is journaled
as one atomic group, so kill+restore mid-consolidation reproduces the
exact state. See ``docs/service.md`` ("Consolidation").
"""

from repro.consolidation.fragmentation import (
    FragmentationMonitor,
    FragmentationReading,
)
from repro.consolidation.planner import (
    ConsolidationPlan,
    ConsolidationReport,
    MigrationPlanner,
    PlannedMove,
)
from repro.consolidation.victim import VictimScore, VictimSelector

__all__ = [
    "ConsolidationPlan",
    "ConsolidationReport",
    "FragmentationMonitor",
    "FragmentationReading",
    "MigrationPlanner",
    "PlannedMove",
    "VictimScore",
    "VictimSelector",
]
