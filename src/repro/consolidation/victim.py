"""Victim selection: which servers are worth draining, in what order.

A server is a consolidation *victim* when it hosts few spanning
residents but would keep burning idle/busy power for a long tail —
draining it trades a handful of cheap migrations for the whole tail.
The ranking reuses the paper's Eq.-2/3 vocabulary via
:class:`~repro.obs.explain.CostTerms`: the ``idle_gap`` term holds the
busy power still owed from the migration tick onwards (``p_idle`` times
the remaining busy span), and ``wake`` holds the transition energy
``alpha_i`` a future re-wake of the emptied server would cost. Servers
are drained fewest-residents-first (fewest moves per server freed),
ties broken by the largest reclaimable total, then by server id so the
order — and therefore every downstream migration plan — is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.allocators.state import ServerState
from repro.obs.explain import CostTerms

__all__ = ["VictimScore", "VictimSelector"]


@dataclass(frozen=True)
class VictimScore:
    """One drain candidate: how many moves it takes, what it reclaims.

    ``residents`` counts the spanning pieces (``start < time <= end``)
    that would each need one migration; ``reclaim`` is the Eq.-2/3
    upper bound on what emptying the server recovers — the busy power
    still owed from ``time`` on (``idle_gap``) plus the wake energy a
    later restart would charge (``wake``). ``run`` is always zero: the
    VMs' own run energy moves with them, it is never reclaimed.
    """

    server_id: int
    residents: int
    reclaim: CostTerms

    @property
    def sort_key(self) -> tuple[int, float, int]:
        return (self.residents, -self.reclaim.total, self.server_id)


class VictimSelector:
    """Ranks drainable servers: fewest residents, largest reclaim."""

    def score(self, state: ServerState, server_id: int,
              time: int) -> VictimScore | None:
        """Score one server as a drain candidate at tick ``time``.

        Returns ``None`` when the server has no spanning resident —
        nothing to drain (either already empty, or every resident ends
        before ``time`` / starts at or after it and will be re-placed
        by normal admission, not migration).
        """
        residents = sum(1 for vm in state.vms
                        if vm.start < time <= vm.end)
        if residents == 0:
            return None
        spec = state.server.spec
        busy_after = 0
        for segment in state.busy_segments():
            if segment.end >= time:
                busy_after += segment.end - max(segment.start, time) + 1
        reclaim = CostTerms(run=0.0, idle_gap=spec.p_idle * busy_after,
                            wake=spec.transition_cost)
        return VictimScore(server_id=server_id, residents=residents,
                           reclaim=reclaim)

    def rank(self, states: Sequence[ServerState], time: int, *,
             skip: frozenset[int] = frozenset()) -> list[VictimScore]:
        """All drain candidates at tick ``time``, best victim first."""
        scores = []
        for server_id, state in enumerate(states):
            if server_id in skip:
                continue
            score = self.score(state, server_id, time)
            if score is not None:
                scores.append(score)
        scores.sort(key=lambda s: s.sort_key)
        return scores
