"""Migration planning: which VM moves where, and is it worth it.

A live migration at tick ``t`` cuts a running VM through the shared
crash-recovery rule :func:`~repro.simulation.recovery.split_remainder`:
the head ``[start, t-1]`` stays on the source (its energy is spent and
legitimate — unlike a failure, nothing was wasted), the remainder
``[t, end]`` re-bids across the fleet. Moving the remainder to server
``j`` is worth it when

    ``cost_j(remainder) + move_cost  <  cost_source(remainder)``

where both sides are the paper's Eq.-2/3 incremental cost (run energy
``W_ij`` + idle-gap change + wake ``alpha``) evaluated against the
source already shrunk to the head, and ``move_cost =
migration_cost_per_gb * vm.memory`` charges the RAM copy. Only
strictly-saving moves (beyond a 1e-9 band) are planned, so every plan
is net-energy-positive by construction.

:meth:`MigrationPlanner.plan_episode` is the one episode algorithm both
consumers run — the offline :class:`~repro.extensions.consolidation.
EpochConsolidator` at each epoch boundary, and the live
:meth:`~repro.service.state.ClusterStateStore.consolidate` pass (which
feeds it full-history planning replicas) — which is what makes the
live-versus-offline equivalence test possible: identical inputs,
identical code, identical migrations.

Candidate targets are scanned in ascending server id, filtered by
:meth:`~repro.allocators.state.ServerState.probe`; with ``k_sample``
set, only the first ``k`` *feasible* candidates are bid (the GammaFF-
style sampling queue), trading optimality for bounded episode latency
on large fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.allocators.state import ServerState
from repro.consolidation.victim import VictimSelector
from repro.exceptions import ValidationError
from repro.model.phases import demand_profile
from repro.model.vm import VM
from repro.simulation.recovery import split_remainder
from repro.workload.trace import vm_from_record, vm_to_record

__all__ = ["ConsolidationPlan", "ConsolidationReport", "MigrationPlanner",
           "PlannedMove"]

#: A move must beat staying put by more than this band to be planned.
_SAVING_BAND = 1e-9

#: Slack on the fast capacity check so float accumulation can never
#: reject a server the exact probe would accept.
_FREE_SLACK = 1e-9


def _demand_at(vm: VM, time: int) -> tuple[float, float]:
    """``vm``'s (cpu, memory) demand at tick ``time`` (phase-aware)."""
    cpu = mem = 0.0
    for piece, piece_cpu, piece_mem in demand_profile(vm):
        if piece.start <= time <= piece.end:
            cpu += piece_cpu
            mem += piece_mem
    return cpu, mem


class _EpisodeCache:
    """Per-episode scan accelerator: a tick-headroom filter plus a bid
    memo. Plans are unchanged — it only skips and reuses work.

    *Filter*: every remainder a consolidation episode bids starts *at*
    the episode tick, so a server without headroom for it at that
    single tick can never pass the full window
    :meth:`~repro.allocators.state.ServerState.probe`. Tracking free
    (cpu, memory) at the tick per server turns the common "target is
    already packed full" rejection into two float compares instead of
    an occupancy probe. A *necessary* condition only — survivors still
    get the real probe.

    *Memo*: between committed moves the books are immutable, and an
    episode's remainders repeat a handful of (cpu, memory, interval)
    shapes, so each candidate's probe verdict and incremental cost are
    cached by ``(target, shape)`` and invalidated for the two servers a
    commit touches. Phase-profiled VMs bypass the memo (their shape is
    not captured by the key).
    """

    __slots__ = ("time", "free_cpu", "free_mem", "_bids")

    def __init__(self, states: Sequence[ServerState], time: int) -> None:
        self.time = time
        self.free_cpu: list[float] = []
        self.free_mem: list[float] = []
        self._bids: dict[tuple, tuple[bool, float]] = {}
        for state in states:
            cpu = mem = 0.0
            for vm in state.vms:
                vm_cpu, vm_mem = _demand_at(vm, time)
                cpu += vm_cpu
                mem += vm_mem
            spec = state.server.spec
            self.free_cpu.append(spec.cpu_capacity - cpu + _FREE_SLACK)
            self.free_mem.append(spec.memory_capacity - mem + _FREE_SLACK)

    def admits(self, server_id: int, cpu: float, mem: float) -> bool:
        """Whether the server has tick headroom for a (cpu, mem) piece."""
        return (self.free_cpu[server_id] >= cpu
                and self.free_mem[server_id] >= mem)

    def bid(self, target_id: int, target: ServerState, remainder: VM,
            shape: tuple | None) -> tuple[bool, float]:
        """``(probe verdict, incremental cost)`` for one candidate,
        memoised by remainder shape while the book is unchanged."""
        if shape is None:
            if not target.probe(remainder):
                return False, 0.0
            return True, target.incremental_cost(remainder)
        key = (target_id, *shape)
        hit = self._bids.get(key)
        if hit is None:
            if not target.probe(remainder):
                hit = (False, 0.0)
            else:
                hit = (True, target.incremental_cost(remainder))
            self._bids[key] = hit
        return hit

    def commit(self, move: "PlannedMove") -> None:
        """Reflect a committed move: the full piece leaves its source
        (the head ends before the tick), the remainder lands on the
        target; both servers' memoised bids go stale."""
        cpu, mem = _demand_at(move.vm, self.time)
        self.free_cpu[move.source_id] += cpu
        self.free_mem[move.source_id] += mem
        cpu, mem = _demand_at(move.remainder, self.time)
        self.free_cpu[move.target_id] -= cpu
        self.free_mem[move.target_id] -= mem
        touched = (move.source_id, move.target_id)
        for key in [key for key in self._bids if key[0] in touched]:
            del self._bids[key]


@dataclass(frozen=True)
class PlannedMove:
    """One planned live migration at tick ``time == remainder.start``.

    ``vm`` is the piece as currently placed on ``source_id``; ``head``
    is its already-run prefix that stays behind, ``remainder`` the part
    that moves to ``target_id``. ``saving`` is the (negative) net
    Eq.-17 delta of the move *including* the migration energy ``cost``.
    """

    vm: VM
    head: VM
    remainder: VM
    source_id: int
    target_id: int
    saving: float
    cost: float

    @property
    def time(self) -> int:
        """The migration tick (the remainder's first tick)."""
        return self.remainder.start

    def to_record(self) -> dict[str, object]:
        return {
            "vm": vm_to_record(self.vm),
            "head": vm_to_record(self.head),
            "remainder": vm_to_record(self.remainder),
            "source_id": self.source_id,
            "target_id": self.target_id,
            "saving": self.saving,
            "cost": self.cost,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "PlannedMove":
        try:
            return cls(
                vm=vm_from_record(record["vm"]),
                head=vm_from_record(record["head"]),
                remainder=vm_from_record(record["remainder"]),
                source_id=int(record["source_id"]),
                target_id=int(record["target_id"]),
                saving=float(record.get("saving", 0.0)),
                cost=float(record.get("cost", 0.0)),
            )
        except (TypeError, KeyError, ValueError) as exc:
            raise ValidationError(
                f"malformed migration record: {exc}") from exc


@dataclass(frozen=True)
class ConsolidationPlan:
    """Every move one planning episode decided on, in apply order."""

    time: int
    moves: tuple[PlannedMove, ...]

    @property
    def migration_energy(self) -> float:
        """Total migration cost charged by the plan's moves."""
        return sum(move.cost for move in self.moves)

    @property
    def total_saving(self) -> float:
        """Net Eq.-17 delta of the plan (negative: energy saved)."""
        return sum(move.saving for move in self.moves)


@dataclass(frozen=True)
class ConsolidationReport:
    """What one live :meth:`ClusterStateStore.consolidate` episode did."""

    time: int
    moves: tuple[PlannedMove, ...]
    #: drained servers left with no live VM — they power down at the
    #: close of the migration tick
    servers_freed: int

    @property
    def migrations(self) -> int:
        return len(self.moves)

    @property
    def migration_energy(self) -> float:
        return sum(move.cost for move in self.moves)

    @property
    def energy_saved(self) -> float:
        """Net Eq.-17 energy the episode saved (>= 0 by construction:
        only strictly-saving moves are planned)."""
        return -sum(move.saving for move in self.moves)


class MigrationPlanner:
    """Plans net-energy-positive migrations over planning states.

    Parameters
    ----------
    migration_cost_per_gb:
        Energy charged per GByte of VM memory per move, in the same
        watt-time-unit currency as the rest of the model.
    k_sample:
        When set, each remainder is bid to at most this many
        probe-feasible candidate targets (scanned in ascending server
        id) instead of the whole fleet — bounded episode latency at the
        price of possibly missing a cheaper target. ``None`` bids to
        every feasible server (the offline default).
    selector:
        The :class:`~repro.consolidation.victim.VictimSelector` ranking
        drain order (default: fewest residents, largest reclaim).
    """

    def __init__(self, migration_cost_per_gb: float = 5.0,
                 k_sample: int | None = None,
                 selector: VictimSelector | None = None) -> None:
        if migration_cost_per_gb < 0:
            raise ValidationError(
                "migration_cost_per_gb must be non-negative, got "
                f"{migration_cost_per_gb}")
        if k_sample is not None and k_sample < 1:
            raise ValidationError(
                f"k_sample must be >= 1 (or None), got {k_sample}")
        self.migration_cost_per_gb = float(migration_cost_per_gb)
        self.k_sample = k_sample
        self.selector = selector if selector is not None \
            else VictimSelector()

    def move_cost(self, vm: VM) -> float:
        """The per-move migration energy: cost per GB times VM memory."""
        return self.migration_cost_per_gb * vm.memory

    def best_move(self, piece: VM, time: int, source_id: int,
                  states: Sequence[ServerState], next_id: int, *,
                  skip: frozenset[int] = frozenset(),
                  cache: _EpisodeCache | None = None
                  ) -> PlannedMove | None:
        """The best migration for ``piece`` at tick ``time``, if any saves.

        Pure — the states are never touched: the stay-put price is read
        off a hypothetical source book with the piece swapped for its
        head (:meth:`~repro.allocators.state.ServerState.
        incremental_cost_swapped`), and candidates are only probed.
        Commit a returned move with :meth:`apply`. Returns ``None``
        when keeping the piece in place is cheapest (or the piece has
        not started yet — nothing runs, so there is no RAM to migrate).
        ``cache`` is :meth:`plan_episode`'s scan accelerator; it never
        changes which move wins.
        """
        head, remainder, _ = split_remainder(piece, time, next_id)
        if head is None:
            return None
        source = states[source_id]
        # Staying put costs the remainder's incremental on the source
        # shrunk to the head — the same for every candidate, so priced
        # once, and hypothetically, so the book stays untouched.
        stay_cost = source.incremental_cost_swapped(
            remainder, without=piece, plus=head)
        need_cpu, need_mem = _demand_at(remainder, time)
        shape = ((remainder.start, remainder.end, remainder.cpu,
                  remainder.memory) if type(remainder) is VM else None)
        best_target: int | None = None
        best_saving = 0.0
        move_cost = self.move_cost(piece)
        examined = 0
        for target_id, target in enumerate(states):
            if target_id == source_id or target_id in skip:
                continue
            if cache is not None:
                if not cache.admits(target_id, need_cpu, need_mem):
                    continue
                feasible, inc = cache.bid(target_id, target, remainder,
                                          shape)
            else:
                feasible = bool(target.probe(remainder))
                inc = target.incremental_cost(remainder) if feasible \
                    else 0.0
            if not feasible:
                continue
            examined += 1
            saving = inc + move_cost - stay_cost
            if saving < best_saving - _SAVING_BAND:
                best_saving = saving
                best_target = target_id
            if self.k_sample is not None and examined >= self.k_sample:
                break
        if best_target is None:
            return None
        return PlannedMove(vm=piece, head=head, remainder=remainder,
                           source_id=source_id, target_id=best_target,
                           saving=best_saving, cost=move_cost)

    def apply(self, move: PlannedMove,
              states: Sequence[ServerState]) -> tuple[float, float]:
        """Commit ``move`` on planning states.

        Returns ``(source_delta, target_delta)`` — the Eq.-17 change of
        each book (the source delta is the head replacing the full
        piece, usually negative). The move must have been produced by
        :meth:`best_move` against these states: the head re-occupies
        part of the full piece's slot and the target was probe-checked
        during the scan, so both land without re-validation.
        """
        source = states[move.source_id]
        removed = source.remove(move.vm)
        head_added = source.place_trusted(move.head)
        target_delta = states[move.target_id].place_trusted(move.remainder)
        return head_added - removed, target_delta

    def plan_episode(self, states: Sequence[ServerState], time: int,
                     next_id: int, *,
                     skip: frozenset[int] = frozenset()
                     ) -> ConsolidationPlan:
        """One consolidation episode at tick ``time``, applied to
        ``states`` as it goes.

        Victims are ranked once (by the selector), then drained in rank
        order: each spanning resident — ``start < time <= end``, in
        ``(start, vm_id)`` order — is offered its :meth:`best_move`,
        and saving moves are committed immediately so later decisions
        see them. Remainders placed during the episode start *at*
        ``time`` and are therefore never re-moved within it: the queue
        drains in one sweep. ``skip`` names servers that may neither be
        drained nor targeted (the store passes its dead set).
        """
        moves: list[PlannedMove] = []
        cache = _EpisodeCache(states, time)
        for victim in self.selector.rank(states, time, skip=skip):
            residents = sorted(
                (vm for vm in states[victim.server_id].vms
                 if vm.start < time <= vm.end),
                key=lambda v: (v.start, v.vm_id))
            for piece in residents:
                move = self.best_move(piece, time, victim.server_id,
                                      states, next_id, skip=skip,
                                      cache=cache)
                if move is None:
                    continue
                self.apply(move, states)
                cache.commit(move)
                next_id += 2
                moves.append(move)
        return ConsolidationPlan(time=time, moves=tuple(moves))
