"""Command-line interface.

Usage examples::

    repro list
    repro table servers
    repro run --algorithm min-energy --vms 200 --interarrival 4
    repro figure fig2 --quick
    repro trace --vms 100 --interarrival 4 --out trace.csv
    repro analyze --trace trace.csv
    repro sweep --field mean_duration --values 2 5 10
    repro solve --vms 12 --window 25
    repro audit --vms 200
    repro explain --vms 30 --servers 5 --algorithm min-energy
    repro report --out report.md --quick
    repro serve --port 7077 --metrics-port 9100 --data-dir state/
    repro serve --port 7077 --trace-out spans.json
    repro client --port 7077 --vms 200 --interarrival 4
    repro client --port 7077 --vms 200 --retries 5
    repro inject-fault --port 7077 --server-id 3
    repro inject-fault --port 7077 --server-id 3 --recover
    repro serve --port 7077 --consolidate-epoch 50 --frag-threshold 0.4
    repro serve --port 7077 --log-json --slo-latency-ms 50
    repro consolidate --port 7077 --at 120
    repro top --port 7077 --interval 2
    repro slo --port 7077
    repro trace spans.json

(Equivalently ``python -m repro ...``. Running ``repro`` with no
subcommand prints the usage line and exits with status 2.)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.allocators.registry import allocator_names
from repro.experiments import figures as figures_mod
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import compare_averaged
from repro.experiments.tables import table1, table2
from repro.exceptions import ReproError
from repro.workload.trace import Trace

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig2": figures_mod.fig2,
    "fig3": figures_mod.fig3,
    "fig4": figures_mod.fig4,
    "fig5": figures_mod.fig5,
    "fig6": figures_mod.fig6,
    "fig7": figures_mod.fig7,
    "fig8": figures_mod.fig8,
    "fig9": figures_mod.fig9,
    "zoo": figures_mod.ablation_zoo,
    "sleep": figures_mod.ablation_sleep_policy,
    "wake": figures_mod.ablation_initial_wake,
    "ilp-gap": figures_mod.ilp_gap,
    "robust": figures_mod.robust_frontier,
}

#: Reduced grids so --quick completes in seconds.
_QUICK_OVERRIDES = {
    "fig2": dict(n_vms_list=(100, 200), interarrivals=(1.0, 4.0, 8.0),
                 seeds=(0, 1)),
    "fig3": dict(interarrivals=(1.0, 4.0, 8.0), seeds=(0, 1)),
    "fig4": dict(n_vms_list=(100, 200), interarrivals=(1.0, 4.0, 8.0),
                 seeds=(0, 1)),
    "fig5": dict(n_vms=200, interarrivals=(1.0, 4.0, 8.0), seeds=(0, 1)),
    "fig6": dict(n_vms=200, interarrivals=(1.0, 4.0, 8.0), seeds=(0, 1)),
    "fig7": dict(n_vms_list=(100, 200), interarrivals=(1.0, 4.0, 8.0),
                 seeds=(0, 1)),
    "fig8": dict(n_vms=200, interarrivals=(1.0, 4.0, 8.0), seeds=(0, 1)),
    "fig9": dict(n_vms=200, interarrivals=(1.0, 4.0, 8.0), seeds=(0, 1)),
    "ilp-gap": dict(n_vms=8, seeds=(0, 1)),
    "robust": dict(n_vms=100, gammas=(0, 1, 2), draws=5),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-saving VM allocation (Xie et al., ICDCSW'13) "
                    "reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available allocation algorithms")

    p_table = sub.add_parser("table", help="print Table I or Table II")
    p_table.add_argument("which", choices=("vms", "servers"))

    p_run = sub.add_parser(
        "run", help="compare one algorithm against FFPS on a scenario")
    p_run.add_argument("--algorithm", default="min-energy",
                       choices=allocator_names())
    p_run.add_argument("--vms", type=int, default=100)
    p_run.add_argument("--interarrival", type=float, default=4.0)
    p_run.add_argument("--duration", type=float, default=5.0)
    p_run.add_argument("--transition", type=float, default=1.0)
    p_run.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3, 4])

    p_fig = sub.add_parser(
        "figure", help="regenerate a figure's data (fig2..fig9, ablations)")
    p_fig.add_argument("name", choices=sorted(_FIGURES))
    p_fig.add_argument("--quick", action="store_true",
                       help="reduced grid for a fast preview")
    p_fig.add_argument("--out", default=None,
                       help="also export the data (.csv or .json)")

    p_robust = sub.add_parser(
        "robust", help="Γ-robust frontier: replay committed plans "
                       "against demand realized from the declared "
                       "intervals")
    p_robust.add_argument("--vms", type=int, default=300)
    p_robust.add_argument("--interarrival", type=float, default=0.5)
    p_robust.add_argument("--duration", type=float, default=8.0)
    p_robust.add_argument("--uncertainty", type=float, default=0.3,
                          help="demand radius as a fraction of nominal "
                               "(0, 1]")
    p_robust.add_argument("--gammas", type=int, nargs="+",
                          default=[0, 1, 2, 3, 4],
                          help="Γ budgets to sweep (0 = nominal)")
    p_robust.add_argument("--no-box", action="store_true",
                          help="skip the full worst-case anchor point")
    p_robust.add_argument("--algorithm", default="first-fit",
                          choices=allocator_names())
    p_robust.add_argument("--draws", type=int, default=20,
                          help="realized demand worlds per budget")
    p_robust.add_argument("--seed", type=int, default=7)

    p_trace = sub.add_parser(
        "trace", help="generate a workload trace, or summarize a "
                      "Chrome-trace file")
    p_trace.add_argument("file", nargs="?", default=None,
                         help="a Chrome trace_event JSON file to "
                              "summarize (as written by "
                              "'serve --trace-out'); omit to generate a "
                              "workload trace instead")
    p_trace.add_argument("--vms", type=int, default=100)
    p_trace.add_argument("--interarrival", type=float, default=4.0)
    p_trace.add_argument("--duration", type=float, default=5.0)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default=None,
                         help="output path (.csv or .json); required "
                              "when generating")

    p_analyze = sub.add_parser(
        "analyze", help="concurrency profile and energy bounds of a "
                        "workload")
    p_analyze.add_argument("--trace", default=None,
                           help="trace file (.csv or .json); otherwise "
                                "a workload is generated")
    p_analyze.add_argument("--vms", type=int, default=100)
    p_analyze.add_argument("--interarrival", type=float, default=4.0)
    p_analyze.add_argument("--duration", type=float, default=5.0)
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.add_argument("--servers", type=int, default=None,
                           help="fleet size (default: half the VMs)")

    p_sweep = sub.add_parser(
        "sweep", help="sensitivity sweep of one scenario knob")
    p_sweep.add_argument("--field", required=True,
                         choices=("n_vms", "mean_interarrival",
                                  "mean_duration", "transition_time",
                                  "server_ratio"))
    p_sweep.add_argument("--values", type=float, nargs="+", required=True)
    p_sweep.add_argument("--algorithm", default="min-energy",
                         choices=allocator_names())
    p_sweep.add_argument("--vms", type=int, default=100)
    p_sweep.add_argument("--interarrival", type=float, default=4.0)
    p_sweep.add_argument("--duration", type=float, default=5.0)
    p_sweep.add_argument("--seeds", type=int, nargs="+",
                         default=[0, 1, 2, 3, 4])

    p_solve = sub.add_parser(
        "solve", help="exact / receding-horizon solve of a small "
                      "workload")
    p_solve.add_argument("--vms", type=int, default=10)
    p_solve.add_argument("--servers", type=int, default=5)
    p_solve.add_argument("--interarrival", type=float, default=2.0)
    p_solve.add_argument("--duration", type=float, default=5.0)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--window", type=int, default=None,
                         help="receding-horizon window; omit for the "
                              "full exact ILP")
    p_solve.add_argument("--time-limit", type=float, default=60.0)

    p_audit = sub.add_parser(
        "audit", help="characterise a workload, plan it, and audit the "
                      "plan")
    p_audit.add_argument("--trace", default=None,
                         help="trace file (.csv or .json); otherwise a "
                              "workload is generated")
    p_audit.add_argument("--vms", type=int, default=100)
    p_audit.add_argument("--interarrival", type=float, default=4.0)
    p_audit.add_argument("--duration", type=float, default=5.0)
    p_audit.add_argument("--seed", type=int, default=0)
    p_audit.add_argument("--servers", type=int, default=None)
    p_audit.add_argument("--algorithm", default="min-energy",
                         choices=allocator_names())

    p_explain = sub.add_parser(
        "explain", help="explain every placement decision of one "
                        "allocator run: candidates, feasibility, cost "
                        "terms")
    p_explain.add_argument("--trace", default=None,
                           help="trace file (.csv or .json); otherwise "
                                "a workload is generated")
    p_explain.add_argument("--vms", type=int, default=30)
    p_explain.add_argument("--interarrival", type=float, default=4.0)
    p_explain.add_argument("--duration", type=float, default=5.0)
    p_explain.add_argument("--seed", type=int, default=0)
    p_explain.add_argument("--servers", type=int, default=None,
                           help="fleet size (default: half the VMs)")
    p_explain.add_argument("--algorithm", default="min-energy",
                           choices=allocator_names())
    p_explain.add_argument("--max-delay", type=int, default=0,
                           help="admission queue depth in ticks")
    p_explain.add_argument("--vm-id", type=int, default=None,
                           help="show the full candidate breakdown for "
                                "this VM only")

    p_report = sub.add_parser(
        "report", help="write a markdown reproduction report")
    p_report.add_argument("--out", required=True)
    p_report.add_argument("--sections", nargs="+", default=None,
                          help="subset of sections (default: all)")
    p_report.add_argument("--quick", action="store_true",
                          help="reduced grids for a fast preview")

    p_serve = sub.add_parser(
        "serve", help="run the online allocation daemon (JSON lines over "
                      "TCP or stdio)")
    p_serve.add_argument("--servers", type=int, default=100,
                         help="fleet size (paper's five-type mix)")
    p_serve.add_argument("--algorithm", default="min-energy",
                         choices=allocator_names())
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument("--algo-param", action="append", default=[],
                         metavar="KEY=VALUE", dest="algo_param",
                         help="extra allocator constructor parameter "
                              "(repeatable), e.g. --algo-param "
                              "policy=never-sleep --algo-param "
                              "engine=indexed:kernel=off (engine takes "
                              "an EngineConfig spec string and also "
                              "configures the cluster store)")
    p_serve.add_argument("--max-delay", type=int, default=0,
                         help="queue depth in ticks when the fleet is "
                              "full (0 = reject outright)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7077,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--stdio", action="store_true",
                         help="serve stdin/stdout instead of TCP")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="also expose Prometheus /metrics over HTTP")
    p_serve.add_argument("--data-dir", default=None,
                         help="journal + snapshot directory (enables "
                              "crash-safe restart)")
    p_serve.add_argument("--snapshot-every", type=int, default=100,
                         help="checkpoint after this many placements")
    p_serve.add_argument("--restore", action="store_true",
                         help="resume from --data-dir's snapshot and "
                              "journal")
    p_serve.add_argument("--trace-out", default=None,
                         help="record spans while serving and write a "
                              "Chrome trace_event JSON on shutdown")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="partition the fleet into this many shards "
                              "and fan each feasibility scan out across "
                              "them (identical placements at any count)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="thread-pool width for the shard scans "
                              "(default: one per shard)")
    p_serve.add_argument("--scan-processes", type=int, default=0,
                         metavar="N",
                         help="run shard scans on N worker processes "
                              "(replicated state, bit-identical "
                              "placements; needs --shards > 1; 0 = "
                              "in-process scans)")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         help="mutating requests in flight before the "
                              "daemon answers 'overloaded' (0 = "
                              "unbounded)")
    p_serve.add_argument("--http-port", type=int, default=None,
                         metavar="PORT",
                         help="also serve the HTTP/REST gateway on this "
                              "port (0 picks an ephemeral port)")
    p_serve.add_argument("--consolidate-epoch", type=int, default=0,
                         metavar="N",
                         help="run a live consolidation episode at every "
                              "Nth tick boundary (0 = disabled)")
    p_serve.add_argument("--frag-threshold", type=float, default=None,
                         metavar="X",
                         help="run a live consolidation episode whenever "
                              "fleet fragmentation reaches X in (0, 1]")
    p_serve.add_argument("--migration-cost", type=float, default=5.0,
                         metavar="E",
                         help="migration energy charged per GByte of a "
                              "moved VM's memory")
    p_serve.add_argument("--migration-k", type=int, default=None,
                         metavar="K",
                         help="bid each migrating remainder to at most K "
                              "feasible targets (bounds episode latency)")
    p_serve.add_argument("--log-json", action="store_true",
                         help="emit structured JSON logs (one object per "
                              "line on stderr), correlated by trace id")
    p_serve.add_argument("--log-level", default="info",
                         choices=("debug", "info", "warning", "error"),
                         help="minimum level for --log-json records")
    p_serve.add_argument("--slo-latency-ms", type=float, default=100.0,
                         metavar="MS",
                         help="latency SLO objective: a request is 'fast' "
                              "when served within MS milliseconds")
    p_serve.add_argument("--slo-latency-target", type=float, default=0.99,
                         metavar="F",
                         help="fraction of requests that must be fast")
    p_serve.add_argument("--slo-availability", type=float, default=0.999,
                         metavar="F",
                         help="fraction of requests that must succeed")
    p_serve.add_argument("--telemetry-capacity", type=int, default=1024,
                         metavar="N",
                         help="per-tick fleet telemetry ring size "
                              "(0 disables sampling)")
    p_serve.add_argument("--flight-capacity", type=int, default=256,
                         metavar="N",
                         help="flight-recorder ring size: last N "
                              "request/response pairs kept for debug "
                              "dumps (0 disables)")

    p_client = sub.add_parser(
        "client", help="stream a workload at a running daemon")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7077)
    p_client.add_argument("--framing", default="lines",
                          choices=("lines", "frames"),
                          help="wire dialect: v1 JSON lines or v3 "
                               "binary frames")
    p_client.add_argument("--trace", default=None,
                          help="trace file (.csv or .json); otherwise a "
                               "workload is generated")
    p_client.add_argument("--vms", type=int, default=100)
    p_client.add_argument("--interarrival", type=float, default=4.0)
    p_client.add_argument("--duration", type=float, default=5.0)
    p_client.add_argument("--seed", type=int, default=0)
    p_client.add_argument("--batch", type=int, default=None,
                          metavar="N",
                          help="send v2 place_batch requests of up to N "
                               "VMs instead of one place per VM")
    p_client.add_argument("--shutdown", action="store_true",
                          help="ask the daemon to shut down afterwards")
    p_client.add_argument("--retries", type=int, default=0,
                          help="retry transient failures (connection "
                               "drops, overload shedding) up to this "
                               "many times with capped exponential "
                               "backoff")

    p_fault = sub.add_parser(
        "inject-fault", help="report a live server failure (or recovery) "
                             "to a running daemon")
    p_fault.add_argument("--host", default="127.0.0.1")
    p_fault.add_argument("--port", type=int, default=7077)
    p_fault.add_argument("--server-id", type=int, required=True,
                         help="the server that failed (or recovered)")
    p_fault.add_argument("--at", type=int, default=None, metavar="TICK",
                         help="failure tick (default: the daemon's "
                              "current clock)")
    p_fault.add_argument("--recover", action="store_true",
                         help="bring the server back instead of "
                              "failing it")
    p_fault.add_argument("--retries", type=int, default=0,
                         help="retry transient failures up to this many "
                              "times")

    p_consolidate = sub.add_parser(
        "consolidate", help="force one live consolidation episode on a "
                            "running daemon")
    p_consolidate.add_argument("--host", default="127.0.0.1")
    p_consolidate.add_argument("--port", type=int, default=7077)
    p_consolidate.add_argument("--at", type=int, default=None,
                               metavar="TICK",
                               help="episode tick (default: the daemon's "
                                    "current clock)")
    p_consolidate.add_argument("--retries", type=int, default=0,
                               help="retry transient failures up to this "
                                    "many times")

    p_top = sub.add_parser(
        "top", help="live fleet telemetry dashboard for a running daemon")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7077)
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N refreshes (0 = run until ^C)")
    p_top.add_argument("--last", type=int, default=10, metavar="N",
                       help="show the newest N telemetry samples")
    p_top.add_argument("--retries", type=int, default=0,
                       help="retry transient failures up to this many "
                            "times")

    p_slo = sub.add_parser(
        "slo", help="print a daemon's SLO burn-rate report (exit 1 when "
                    "an objective is burning)")
    p_slo.add_argument("--host", default="127.0.0.1")
    p_slo.add_argument("--port", type=int, default=7077)
    p_slo.add_argument("--retries", type=int, default=0,
                       help="retry transient failures up to this many "
                            "times")
    return parser


def _cmd_list() -> int:
    for name in allocator_names():
        print(name)
    return 0


def _cmd_table(which: str) -> int:
    print(table1() if which == "vms" else table2())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        n_vms=args.vms,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
        transition_time=args.transition,
        seeds=tuple(args.seeds),
    )
    result = compare_averaged(config, algorithm=args.algorithm)
    print(f"scenario: {args.vms} VMs on {config.n_servers} servers, "
          f"inter-arrival {args.interarrival} min, "
          f"mean length {args.duration} min")
    print(f"ffps energy:        {result.baseline_energy}")
    print(f"{args.algorithm} energy: {result.algorithm_energy}")
    print(f"energy reduction:   {100 * result.reduction.mean:.2f}% "
          f"± {100 * result.reduction.ci_halfwidth:.2f}")
    print(f"cpu util (ffps/{args.algorithm}): "
          f"{100 * result.baseline_cpu_util.mean:.1f}% / "
          f"{100 * result.algorithm_cpu_util.mean:.1f}%")
    print(f"mem util (ffps/{args.algorithm}): "
          f"{100 * result.baseline_mem_util.mean:.1f}% / "
          f"{100 * result.algorithm_mem_util.mean:.1f}%")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fn = _FIGURES[args.name]
    kwargs = _QUICK_OVERRIDES.get(args.name, {}) if args.quick else {}
    result = fn(**kwargs)
    print(result.format())
    if args.out:
        from repro.experiments.export import save_csv, save_json

        saver = save_json if args.out.endswith(".json") else save_csv
        rows = saver(result, args.out)
        print(f"\nexported {rows} rows to {args.out}")
    return 0


def _cmd_robust(args: argparse.Namespace) -> int:
    result = figures_mod.robust_frontier(
        n_vms=args.vms, mean_interarrival=args.interarrival,
        mean_duration=args.duration, uncertainty=args.uncertainty,
        gammas=tuple(args.gammas), include_box=not args.no_box,
        algo=args.algorithm, draws=args.draws, seed=args.seed)
    print(result.format())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.file:
        from repro.obs.export import load_chrome_trace, \
            summarize_chrome_trace

        events = load_chrome_trace(args.file)
        print(summarize_chrome_trace(events))
        return 0
    if not args.out:
        print("error: --out is required when generating a trace",
              file=sys.stderr)
        return 2
    config = ScenarioConfig(
        n_vms=args.vms,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
    )
    trace = Trace.from_vms(
        config.generate_vms(args.seed),
        n_vms=args.vms, mean_interarrival=args.interarrival,
        mean_duration=args.duration, seed=args.seed)
    if args.out.endswith(".json"):
        trace.save_json(args.out)
    else:
        trace.save_csv(args.out)
    print(f"wrote {len(trace)} VMs to {args.out}")
    return 0


def _load_or_generate(args: argparse.Namespace):
    if getattr(args, "trace", None):
        loader = (Trace.load_json if args.trace.endswith(".json")
                  else Trace.load_csv)
        return list(loader(args.trace))
    config = ScenarioConfig(
        n_vms=args.vms,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
    )
    return config.generate_vms(args.seed)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import concurrency_profile, conflict_graph, \
        energy_lower_bound
    from repro.model.cluster import Cluster

    vms = _load_or_generate(args)
    if not vms:
        print("empty workload")
        return 0
    profile = concurrency_profile(vms)
    graph = conflict_graph(vms)
    n_servers = args.servers or max(1, len(vms) // 2)
    cluster = Cluster.paper_all_types(n_servers)
    bound = energy_lower_bound(vms, cluster)
    horizon = max(vm.end for vm in vms)
    print(f"workload: {len(vms)} VMs over [1, {horizon}]")
    print(f"conflicts: {graph.number_of_edges()} overlapping pairs")
    print(f"max concurrent VMs: {profile.max_concurrent} "
          f"(at t={profile.peak_time})")
    print(f"peak demand: {profile.peak_cpu:.1f} cu "
          f"(t={profile.peak_cpu_time}), "
          f"{profile.peak_memory:.1f} GB (t={profile.peak_memory_time})")
    print(f"fleet: {n_servers} servers, "
          f"{cluster.total_cpu_capacity:.0f} cu / "
          f"{cluster.total_memory_capacity:.0f} GB")
    print(f"energy lower bound: {bound.total:.0f} W·min "
          f"(run {bound.run:.0f} + idle {bound.idle:.0f})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import sensitivity_sweep

    base = ScenarioConfig(
        n_vms=args.vms,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
        seeds=tuple(args.seeds),
    )
    result = sensitivity_sweep(base, args.field, args.values,
                               algorithm=args.algorithm)
    print(f"sweeping {args.field} "
          f"({args.algorithm} vs ffps, {len(args.seeds)} seeds):\n")
    print(result.format())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.allocators import make_allocator
    from repro.energy.cost import allocation_cost
    from repro.ilp import RecedingHorizonSolver, solve_ilp
    from repro.model.cluster import Cluster

    config = ScenarioConfig(
        n_vms=args.vms,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
        server_ratio=args.servers / args.vms,
    )
    vms = config.generate_vms(args.seed)
    cluster = Cluster.paper_all_types(args.servers)
    if args.window:
        solver = RecedingHorizonSolver(window_length=args.window,
                                       time_limit_per_window=args.time_limit)
        result = solver.allocate(vms, cluster)
        exact_cost = result.total_energy
        label = f"receding horizon (window {args.window}, " \
                f"{result.windows} windows)"
    else:
        result = solve_ilp(vms, cluster, time_limit=args.time_limit)
        exact_cost = result.objective
        label = f"exact ILP ({result.status})"
    heuristic = allocation_cost(
        make_allocator("min-energy").allocate(vms, cluster)).total
    print(f"{label}: {exact_cost:.1f} W·min")
    print(f"heuristic:  {heuristic:.1f} W·min "
          f"(+{100 * (heuristic - exact_cost) / exact_cost:.2f}%)")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.allocators import make_allocator
    from repro.analysis import diagnose, energy_lower_bound
    from repro.metrics.latency import latency_stats
    from repro.model.cluster import Cluster
    from repro.workload.characterize import characterize

    vms = _load_or_generate(args)
    if len(vms) < 2:
        print("workload too small to audit")
        return 0
    n_servers = args.servers or max(1, len(vms) // 2)
    cluster = Cluster.paper_all_types(n_servers)
    print("workload characterisation:")
    print("  " + characterize(vms).format().replace("\n", "\n  "))
    plan = make_allocator(args.algorithm, seed=args.seed).allocate(
        vms, cluster)
    print(f"\nplan ({args.algorithm} on {n_servers} servers):")
    print("  " + diagnose(plan).format().replace("\n", "\n  "))
    bound = energy_lower_bound(vms, cluster)
    from repro.energy.cost import allocation_cost

    cost = allocation_cost(plan).total
    print(f"\nenergy lower bound: {bound.total:.0f} "
          f"(plan is +{100 * bound.gap_of(cost):.0f}% above)")
    waits = latency_stats(plan)
    print(f"wake-up waits: {100 * waits.affected_fraction:.0f}% of VMs "
          f"wait, mean {waits.mean:.2f} time units")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.allocators import make_allocator
    from repro.allocators.state import ServerState
    from repro.model.cluster import Cluster
    from repro.obs.explain import ExplainRecorder, format_decision_table
    from repro.simulation.admission import offer

    vms = _load_or_generate(args)
    if not vms:
        print("empty workload")
        return 0
    n_servers = args.servers or max(1, len(vms) // 2)
    cluster = Cluster.paper_all_types(n_servers)
    allocator = make_allocator(args.algorithm, seed=args.seed)
    states = [ServerState(server) for server in cluster]
    allocator.prepare(states)
    recorder = ExplainRecorder()
    ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
    for vm in ordered:
        decision = offer(vm, states, allocator,
                         max_delay=args.max_delay, recorder=recorder)
        if decision is not None:
            decision.state.place(decision.vm)
    explanations = list(recorder)
    if args.vm_id is not None:
        explanations = recorder.for_vm(args.vm_id)
        if not explanations:
            print(f"error: vm{args.vm_id} is not in the workload",
                  file=sys.stderr)
            return 1
    print(f"{args.algorithm} on {n_servers} servers, "
          f"{len(ordered)} VMs offered "
          f"(max delay {args.max_delay}):\n")
    print(format_decision_table(explanations))
    # Full per-candidate breakdowns: every explanation when one VM was
    # asked for, otherwise every rejection (the interesting failures).
    detailed = explanations if args.vm_id is not None \
        else [e for e in explanations if e.decision == "rejected"]
    for explanation in detailed:
        print()
        print(explanation.format())
    return 0


def _parse_algo_params(pairs: Sequence[str]) -> dict[str, object]:
    """``KEY=VALUE`` strings -> allocator kwargs, with literal coercion.

    Values try int, then float, then true/false, then stay strings;
    name/type validation proper happens in ``make_allocator``.
    """
    params: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --algo-param expects KEY=VALUE, got {pair!r}")
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                lowered = raw.lower()
                if lowered in ("true", "false"):
                    value = lowered == "true"
                elif lowered in ("none", "null"):
                    value = None
                else:
                    value = raw
        params[key] = value
    return params


def _usage_error(code: str, message: str) -> int:
    """Print a structured usage error (the service's envelope shape,
    so scripts can parse stderr) and return the usage exit code."""
    import json

    from repro.service.errors import envelope

    print(json.dumps({"ok": False, "error": envelope(code, message)}),
          file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.model.cluster import Cluster
    from repro.service import (
        AllocationDaemon,
        ClusterStateStore,
        serve_async,
        serve_stdio,
        start_metrics_server,
    )

    if args.workers is not None and 0 < args.max_inflight < args.workers:
        return _usage_error(
            "bad_request",
            f"--max-inflight {args.max_inflight} is smaller than "
            f"--workers {args.workers}: the ingest semaphore would "
            f"admit fewer requests than there are scan workers, "
            f"permanently starving the pool; raise --max-inflight or "
            f"lower --workers")
    if args.scan_processes < 0:
        return _usage_error(
            "bad_request",
            f"--scan-processes must be >= 0, got {args.scan_processes}")
    if args.scan_processes > 0 and args.shards <= 1:
        return _usage_error(
            "bad_request",
            f"--scan-processes {args.scan_processes} needs --shards > 1: "
            f"an unsharded fleet has no scan fan-out to hand to worker "
            f"processes")

    # In stdio mode stdout carries the protocol, so banners go to stderr.
    log = sys.stderr if args.stdio else sys.stdout
    logger = None
    if args.log_json:
        from repro.obs.logging import JsonLogger, set_logger

        # JSON logs share stderr with banners; each record is one line.
        logger = JsonLogger(sys.stderr, level=args.log_level)
        set_logger(logger)

    def _start_metrics(target: object) -> None:
        # For --restore this runs via on_built, before journal replay,
        # so /healthz answers 503 "restoring" while the tail is applied.
        if args.metrics_port is not None:
            metrics_server = start_metrics_server(target, args.host,
                                                  args.metrics_port)
            print(f"metrics on http://{args.host}:"
                  f"{metrics_server.server_address[1]}/metrics",
                  file=log, flush=True)

    if args.restore:
        if not args.data_dir:
            print("error: --restore needs --data-dir", file=sys.stderr)
            return 2
        daemon = AllocationDaemon.restore(args.data_dir,
                                          on_built=_start_metrics)
    else:
        from repro.obs import SLOConfig

        # ``--algo-param engine=...`` (an EngineConfig spec string,
        # e.g. "indexed:kernel=off") configures the store's planning
        # states too, so the allocator and the fleet agree.
        algo_params = _parse_algo_params(args.algo_param)
        engine = algo_params.get("engine")
        store = ClusterStateStore(
            Cluster.paper_all_types(args.servers),
            **({"engine": engine} if isinstance(engine, str) else {}))
        daemon = AllocationDaemon(
            store, algorithm=args.algorithm, seed=args.seed,
            algo_params=algo_params,
            max_delay=args.max_delay, data_dir=args.data_dir,
            snapshot_every=args.snapshot_every, shards=args.shards,
            max_workers=args.workers, max_inflight=args.max_inflight,
            scan_processes=args.scan_processes,
            consolidate_every=args.consolidate_epoch,
            frag_threshold=args.frag_threshold,
            migration_cost_per_gb=args.migration_cost,
            migration_k=args.migration_k,
            slo=SLOConfig(latency_objective=args.slo_latency_ms / 1e3,
                          latency_target=args.slo_latency_target,
                          availability_target=args.slo_availability),
            telemetry_capacity=args.telemetry_capacity,
            flight_capacity=args.flight_capacity)
        _start_metrics(daemon)
    tracer = None
    if args.trace_out:
        from repro.obs.tracer import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
        print(f"tracing to {args.trace_out} (written on shutdown)",
              file=log)
    print(f"cluster: {len(daemon.store.cluster)} servers, "
          f"algorithm {daemon.config['algorithm']}, "
          f"clock {daemon.store.clock}, "
          f"{len(daemon.store.placements)} VMs placed", file=log)
    gateway = None
    try:
        if args.http_port is not None:
            from repro.service import start_gateway

            gateway = start_gateway(daemon, args.host, args.http_port)
            print(f"gateway on http://{gateway.server_address[0]}:"
                  f"{gateway.server_address[1]}/", file=log, flush=True)
        if args.stdio:
            serve_stdio(daemon, sys.stdin, sys.stdout)
        else:
            server = serve_async(daemon, args.host, args.port)
            print(f"serving on {server.address[0]}:"
                  f"{server.address[1]} (JSON lines + v3 frames)",
                  file=log, flush=True)
            try:
                server.join()
            except KeyboardInterrupt:
                daemon.handle({"op": "shutdown"})
            finally:
                server.stop()
    finally:
        if gateway is not None:
            gateway.shutdown()
        if tracer is not None:
            from repro.obs.export import write_chrome_trace
            from repro.obs.tracer import set_tracer

            set_tracer(None)
            written = write_chrome_trace(tracer.events, args.trace_out)
            print(f"wrote {written} trace events to {args.trace_out}",
                  file=log)
        if logger is not None:
            from repro.obs.logging import set_logger

            set_logger(None)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import AllocationClient, ClientConfig, replay_trace

    vms = _load_or_generate(args)
    if not vms:
        print("empty workload")
        return 0
    config = ClientConfig(retries=args.retries)
    with AllocationClient(args.host, args.port, config=config,
                          framing=args.framing) as client:
        summary = replay_trace(client, vms, batch=args.batch)
        stats = client.stats()
        exposition = client.metrics()
        if args.shutdown:
            client.shutdown()
    print(f"offered {summary.offered} VMs: {summary.placed} placed, "
          f"{summary.rejected} rejected "
          f"({100 * summary.rejection_rate:.1f}%), "
          f"{summary.delayed} delayed")
    print(f"mean placement latency: {summary.mean_latency_ms:.3f} ms")
    print(f"energy delta (this stream): "
          f"{summary.energy_delta_total:.1f} W·min")
    print(f"daemon totals: {stats['placed']} placed, clock "
          f"{stats['clock']}, energy {stats['energy_total']:.1f} W·min, "
          f"{stats['servers_active']} servers active")
    print()
    print("final daemon metrics:")
    print(_metrics_summary(exposition))
    return 0


def _metrics_summary(exposition: str) -> str:
    """A terse digest of the daemon's Prometheus exposition."""
    from repro.service.metrics import parse_exposition

    families = parse_exposition(exposition)

    def sample(name: str, default: float = 0.0, **labels: str) -> float:
        for sample_labels, value in families.get(name, []):
            if all(sample_labels.get(k) == v for k, v in labels.items()):
                return value
        return default

    lines = [
        f"  fleet power:       {sample('repro_fleet_power_watts'):.1f} W "
        f"({sample('repro_servers_active'):.0f} active servers, "
        f"{sample('repro_running_vms'):.0f} running VMs)",
        f"  energy total:      "
        f"{sample('repro_energy_accumulated_watt_ticks'):.1f} W·min",
    ]
    # Quantile gauges of the latency summary, labeled by quantile.
    quantiles = {labels.get("quantile"): value for labels, value in
                 families.get("repro_placement_latency_seconds", [])
                 if labels.get("quantile")}
    rendered = ", ".join(
        f"p{float(q) * 100:g} {1000 * value:.3f} ms"
        for q, value in sorted(quantiles.items()))
    lines.append(f"  placement latency: {rendered or 'n/a'}")
    lines.append(
        f"  latency samples:   "
        f"{sample('repro_placement_duration_seconds_count'):.0f} "
        f"(histogram)")
    lines.append(
        f"  placed/rejected:   "
        f"{sample('repro_requests_total', decision='placed'):.0f} / "
        f"{sample('repro_requests_total', decision='rejected'):.0f}")
    decisions = families.get("repro_decisions_total", [])
    if decisions:
        lines.append("  decisions by algorithm:")
        for labels, value in sorted(decisions,
                                    key=lambda s: sorted(s[0].items())):
            algorithm = labels.get("algorithm", "?")
            decision = labels.get("decision", "?")
            lines.append(f"    {algorithm}/{decision}: {value:.0f}")
    return "\n".join(lines)


def _cmd_inject_fault(args: argparse.Namespace) -> int:
    from repro.service import AllocationClient, ClientConfig

    config = ClientConfig(retries=args.retries)
    with AllocationClient(args.host, args.port, config=config) as client:
        if args.recover:
            response = client.recover_server(args.server_id)
        else:
            response = client.fail_server(args.server_id, args.at)
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    if args.recover:
        print(f"server {args.server_id} recovered at tick "
              f"{response['clock']}; still failed: "
              f"{response.get('servers_failed', 0)}")
        return 0
    print(f"server {args.server_id} failed at tick {response['time']}: "
          f"{response['killed']} VMs cut, {response['replaced']} "
          f"re-placed, {len(response.get('lost', []))} lost")
    print(f"fleet energy delta: {response['energy_delta']:.1f} W·min")
    for item in response.get("replacements", []):
        target = item.get("server_id")
        where = f"-> server {target}" if target is not None else "lost"
        print(f"  vm{item['vm_id']} remainder "
              f"vm{item.get('remainder_id', item['vm_id'])} {where} "
              f"(delta {item.get('energy_delta', 0.0):.1f})")
    return 0


def _cmd_consolidate(args: argparse.Namespace) -> int:
    from repro.service import AllocationClient, ClientConfig

    config = ClientConfig(retries=args.retries)
    with AllocationClient(args.host, args.port, config=config) as client:
        response = client.consolidate(args.at)
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    print(f"consolidated at tick {response['time']}: "
          f"{response['migrations']} migrations, "
          f"{response['servers_freed']} servers freed")
    print(f"net energy saved: {response['energy_saved']:.1f} W·min "
          f"(migration cost {response['migration_energy']:.1f} already "
          f"deducted)")
    for item in response.get("moves", []):
        print(f"  vm{item['vm_id']} remainder vm{item['remainder_id']} "
              f"server {item['source_id']} -> {item['target_id']} "
              f"(saving {item['saving']:.1f}, cost {item['cost']:.1f})")
    return 0


def _format_slo(report: dict) -> str:
    """Render an SLO tracker report (as served by the telemetry op)."""
    config = report.get("config", {})
    totals = report.get("totals", {})
    healthy = report.get("healthy", True)
    lines = [
        f"slo: {'healthy' if healthy else 'BURNING'} "
        f"(latency <= {1e3 * config.get('latency_objective', 0):.0f} ms "
        f"for {100 * config.get('latency_target', 0):.4g}% of requests, "
        f"availability {100 * config.get('availability_target', 0):.4g}%)",
        f"  totals: {totals.get('requests', 0)} requests, "
        f"{totals.get('slow', 0)} slow, {totals.get('errors', 0)} errors",
    ]
    for window in report.get("windows", []):
        seconds = window.get("window_seconds", 0)
        lines.append(
            f"  {seconds:>6.10g}s window: "
            f"{window.get('requests', 0):>6} requests, "
            f"latency burn {window.get('latency_burn_rate', 0.0):.3f}, "
            f"availability burn "
            f"{window.get('availability_burn_rate', 0.0):.3f}")
    return "\n".join(lines)


def _format_top(response: dict) -> str:
    """Render one refresh of the ``repro top`` dashboard."""
    samples = response.get("samples", [])
    lines = [f"fleet telemetry at tick {response.get('clock', '?')} "
             f"({len(samples)} samples shown, "
             f"ring capacity {response.get('capacity', 0)}):"]
    if not response.get("enabled", True):
        lines.append("  (telemetry sampling is disabled on this daemon)")
    header = (f"  {'tick':>6} {'active':>6} {'asleep':>6} {'failed':>6} "
              f"{'vms':>5} {'power W':>9} {'energy':>10} {'frag':>6} "
              f"{'infl':>4} {'pend':>4}")
    if samples:
        lines.append(header)
    for s in samples:
        lines.append(
            f"  {s.get('tick', 0):>6} {s.get('servers_active', 0):>6} "
            f"{s.get('servers_asleep', 0):>6} "
            f"{s.get('servers_failed', 0):>6} "
            f"{s.get('running_vms', 0):>5} "
            f"{s.get('fleet_power', 0.0):>9.1f} "
            f"{s.get('energy_accumulated', 0.0):>10.1f} "
            f"{s.get('fragmentation', 0.0):>6.3f} "
            f"{s.get('inflight', 0):>4} {s.get('pending', 0):>4}")
    lines.append(_format_slo(response.get("slo", {})))
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service import AllocationClient, ClientConfig

    config = ClientConfig(retries=args.retries)
    refreshes = 0
    with AllocationClient(args.host, args.port, config=config) as client:
        try:
            while True:
                response = client.telemetry(last=args.last)
                if not response.get("ok"):
                    print(f"error: {response.get('error')}",
                          file=sys.stderr)
                    return 1
                print(_format_top(response), flush=True)
                refreshes += 1
                if args.iterations and refreshes >= args.iterations:
                    return 0
                _time.sleep(args.interval)
                print()
        except KeyboardInterrupt:
            return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.service import AllocationClient, ClientConfig

    config = ClientConfig(retries=args.retries)
    with AllocationClient(args.host, args.port, config=config) as client:
        response = client.telemetry(last=1)
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 1
    report = response.get("slo", {})
    print(_format_slo(report))
    return 0 if report.get("healthy", False) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    size = write_report(args.out, args.sections, quick=args.quick)
    print(f"wrote {size} bytes to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": lambda: _cmd_list(),
        "table": lambda: _cmd_table(args.which),
        "run": lambda: _cmd_run(args),
        "figure": lambda: _cmd_figure(args),
        "trace": lambda: _cmd_trace(args),
        "analyze": lambda: _cmd_analyze(args),
        "sweep": lambda: _cmd_sweep(args),
        "solve": lambda: _cmd_solve(args),
        "report": lambda: _cmd_report(args),
        "audit": lambda: _cmd_audit(args),
        "explain": lambda: _cmd_explain(args),
        "serve": lambda: _cmd_serve(args),
        "client": lambda: _cmd_client(args),
        "inject-fault": lambda: _cmd_inject_fault(args),
        "consolidate": lambda: _cmd_consolidate(args),
        "top": lambda: _cmd_top(args),
        "slo": lambda: _cmd_slo(args),
        "robust": lambda: _cmd_robust(args),
    }
    handler = handlers.get(getattr(args, "command", None))
    if handler is None:
        # argparse already exits for a missing subcommand; this guards
        # the path where the parser is built with it optional.
        parser.print_usage(sys.stderr)
        return 2
    try:
        return handler()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`) — not an error;
        # point the fd at devnull so the interpreter's exit flush stays quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ConnectionError as exc:
        print(f"error: cannot reach the daemon: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
