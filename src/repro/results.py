"""The unified typed result vocabulary of the placement APIs.

Every layer of the library reports "what happened to this VM" — the
batch allocator returns :class:`Decision`, the admission controller
returns :class:`AdmissionDecision`, the online service answers with a
JSON object. :class:`PlacementResult` is the one type that all of
those convert into, so callers aggregating outcomes (the retrying
client, the CLI, experiment harnesses) handle a single shape with a
typed ``status`` instead of probing dicts for ad-hoc keys.

Statuses
--------
``placed``
    The VM landed on a server at its requested start time.
``deferred``
    The VM landed, but only after an admission delay (> 0 ticks).
``rejected``
    No admissible server could host the VM; it was turned away.
``replaced``
    The VM's remainder was re-placed onto a surviving server after its
    host failed mid-run (see ``fail_server`` in ``docs/service.md``).

:class:`Decision` and :class:`AdmissionDecision` are re-exported here
as thin aliases of their defining modules, so
``from repro.results import Decision`` works alongside the historical
import paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.allocators.batch import Decision
from repro.exceptions import ValidationError
from repro.model.vm import VM
from repro.simulation.admission import AdmissionDecision

__all__ = ["STATUSES", "PlacementResult", "Decision", "AdmissionDecision"]

#: Every status a :class:`PlacementResult` may carry.
STATUSES = ("placed", "rejected", "deferred", "replaced")


@dataclass(frozen=True)
class PlacementResult:
    """The typed outcome of offering one VM to a placement API.

    ``server_id`` is ``None`` exactly when ``status == "rejected"``;
    ``energy_delta`` is the committed Eq.-17 incremental energy (0.0
    for rejections); ``delay`` is the admission delay in ticks (> 0
    only for ``deferred``); ``latency_ms`` is the service-side request
    latency when the result came over the wire (``None`` for in-process
    results); ``vm`` and ``explanation`` ride along when the producing
    layer had them.
    """

    vm_id: int
    status: str
    server_id: int | None = None
    energy_delta: float = 0.0
    delay: int = 0
    latency_ms: float | None = None
    vm: VM | None = None
    explanation: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValidationError(
                f"unknown placement status {self.status!r}; expected one "
                f"of {list(STATUSES)}")
        if (self.server_id is None) != (self.status == "rejected"):
            raise ValidationError(
                f"status {self.status!r} is inconsistent with "
                f"server_id={self.server_id!r}")

    @property
    def placed(self) -> bool:
        """Whether the VM landed on a server (any non-rejected status)."""
        return self.status != "rejected"

    @classmethod
    def from_decision(cls, decision: Decision) -> "PlacementResult":
        """Lift a batch-API :class:`Decision` (placed or rejected)."""
        return cls(vm_id=decision.vm.vm_id,
                   status="placed" if decision.placed else "rejected",
                   server_id=decision.server_id,
                   energy_delta=decision.energy_delta,
                   vm=decision.vm)

    @classmethod
    def from_admission(cls, decision: AdmissionDecision | None, *,
                       vm: VM | None = None,
                       energy_delta: float = 0.0) -> "PlacementResult":
        """Lift an admission-controller outcome.

        ``None`` (the controller's reject path) needs the offered ``vm``
        to name the result; an :class:`AdmissionDecision` carries its
        own (possibly shifted) VM and maps to ``placed`` or
        ``deferred`` by its delay.
        """
        if decision is None:
            if vm is None:
                raise ValidationError(
                    "a rejected admission needs the offered vm")
            return cls(vm_id=vm.vm_id, status="rejected", vm=vm)
        return cls(vm_id=decision.vm.vm_id,
                   status="deferred" if decision.delay else "placed",
                   server_id=decision.state.server.server_id,
                   energy_delta=energy_delta,
                   delay=decision.delay,
                   vm=decision.vm)

    @classmethod
    def from_response(cls,
                      response: Mapping[str, object]) -> "PlacementResult":
        """Lift one service ``place`` response (or one ``place_batch``
        per-VM decision object) into a typed result."""
        decision = response.get("decision")
        if decision not in ("placed", "rejected"):
            raise ValidationError(
                f"response carries no placement decision: {response!r}")
        delay = int(response.get("delay", 0) or 0)
        status = "rejected" if decision == "rejected" else \
            ("deferred" if delay else "placed")
        server_id = response.get("server_id")
        latency = response.get("latency_ms")
        explanation = response.get("explanation")
        return cls(vm_id=int(response["vm_id"]),
                   status=status,
                   server_id=None if server_id is None else int(server_id),
                   energy_delta=float(response.get("energy_delta", 0.0)),
                   delay=delay,
                   latency_ms=None if latency is None else float(latency),
                   explanation=explanation
                   if isinstance(explanation, Mapping) else None)
