"""Workload characterisation: fit the paper's model to a recorded trace.

Given any workload (recorded or generated), estimate the parameters of
the paper's stochastic model — mean inter-arrival, mean duration, and the
empirical VM-type mix — and optionally regenerate a *synthetic twin*: a
fresh workload drawn from the fitted model. Twins let a study scale a
recorded trace statistically (more VMs from the same traffic law) instead
of mechanically (the transforms in :mod:`repro.workload.transforms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.model.vm import VM, VMSpec
from repro.workload.generator import PoissonWorkload

__all__ = ["WorkloadStats", "characterize", "synthetic_twin"]


@dataclass(frozen=True)
class WorkloadStats:
    """Fitted parameters of a workload under the paper's model."""

    n_vms: int
    mean_interarrival: float
    mean_duration: float
    duration_cv: float
    type_mix: Mapping[str, float]
    specs: tuple[VMSpec, ...]

    @property
    def arrival_rate(self) -> float:
        """VMs per time unit."""
        return 1.0 / self.mean_interarrival

    @property
    def looks_exponential(self) -> bool:
        """Whether durations are plausibly exponential (CV ≈ 1).

        The coefficient of variation of an exponential distribution is 1;
        heavy tails push it above, deterministic durations toward 0.
        """
        return 0.6 <= self.duration_cv <= 1.6

    def format(self) -> str:
        lines = [
            f"VMs:                {self.n_vms}",
            f"mean inter-arrival: {self.mean_interarrival:.3g}",
            f"mean duration:      {self.mean_duration:.3g} "
            f"(cv {self.duration_cv:.2f}, "
            f"{'~exponential' if self.looks_exponential else 'non-exponential'})",
            "type mix:",
        ]
        for name, share in sorted(self.type_mix.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {name:12s} {100 * share:5.1f}%")
        return "\n".join(lines)


def characterize(vms: Sequence[VM]) -> WorkloadStats:
    """Estimate the paper-model parameters of ``vms``."""
    if len(vms) < 2:
        raise ValidationError(
            "need at least two VMs to characterise a workload")
    ordered = sorted(vms, key=lambda v: (v.start, v.vm_id))
    starts = np.array([vm.start for vm in ordered], dtype=float)
    durations = np.array([vm.duration for vm in ordered], dtype=float)
    mean_ia = float((starts[-1] - starts[0]) / (len(starts) - 1))
    mean_dur = float(durations.mean())
    cv = float(durations.std() / mean_dur) if mean_dur > 0 else 0.0
    counts: dict[str, int] = {}
    spec_of: dict[str, VMSpec] = {}
    for vm in ordered:
        counts[vm.spec.name] = counts.get(vm.spec.name, 0) + 1
        spec_of.setdefault(vm.spec.name, vm.spec)
    total = len(ordered)
    return WorkloadStats(
        n_vms=total,
        mean_interarrival=max(mean_ia, 1e-9),
        mean_duration=mean_dur,
        duration_cv=cv,
        type_mix={name: count / total for name, count in counts.items()},
        specs=tuple(spec_of[name] for name in sorted(spec_of)),
    )


def synthetic_twin(stats: WorkloadStats, count: int | None = None,
                   seed: int | None = None) -> list[VM]:
    """Draw a fresh workload from fitted parameters.

    The twin uses the paper's Poisson/exponential model with the fitted
    means and a type set weighted by the empirical mix (types are
    resampled to match their observed shares).
    """
    count = count if count is not None else stats.n_vms
    if count < 0:
        raise ValidationError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    workload = PoissonWorkload(
        mean_interarrival=stats.mean_interarrival,
        mean_duration=stats.mean_duration,
        vm_types=stats.specs,
    )
    vms = workload.generate(count, rng=rng)
    # Re-draw the types against the empirical mix (the generator samples
    # uniformly; the trace generally does not).
    names = sorted(stats.type_mix)
    weights = np.array([stats.type_mix[name] for name in names])
    weights = weights / weights.sum()
    spec_by_name = {spec.name: spec for spec in stats.specs}
    drawn = rng.choice(len(names), size=len(vms), p=weights)
    return [
        VM(vm_id=vm.vm_id, spec=spec_by_name[names[int(k)]],
           interval=vm.interval)
        for vm, k in zip(vms, drawn)
    ]
