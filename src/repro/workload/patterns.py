"""Extended workload families beyond the paper's Poisson model.

The paper evaluates only homogeneous Poisson arrivals with exponential
durations. Real cloud arrival processes are burstier and show daily
seasonality, and VM lifetimes are heavy-tailed; these generators let the
examples and robustness benches probe whether the heuristic's advantage
survives such traffic. All of them produce the same ``list[VM]`` currency
as :class:`~repro.workload.generator.PoissonWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.model.catalog import ALL_VM_TYPES
from repro.model.intervals import TimeInterval
from repro.model.vm import VM, VMSpec

__all__ = ["BurstyWorkload", "DiurnalWorkload", "HeavyTailWorkload"]


def _coerce_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _build_vms(arrivals: np.ndarray, durations: np.ndarray,
               type_indices: np.ndarray,
               vm_types: tuple[VMSpec, ...]) -> list[VM]:
    vms = []
    for i in range(arrivals.size):
        start = int(arrivals[i])
        end = start + int(durations[i]) - 1
        vms.append(VM(vm_id=i, spec=vm_types[int(type_indices[i])],
                      interval=TimeInterval(start, end)))
    return vms


@dataclass(frozen=True)
class BurstyWorkload:
    """Two-state modulated Poisson process (bursts and lulls).

    The arrival process alternates between a *burst* state with mean
    inter-arrival ``burst_interarrival`` and a *calm* state with mean
    ``calm_interarrival``; the state flips after a geometric number of
    arrivals with mean ``mean_phase_length``.
    """

    burst_interarrival: float
    calm_interarrival: float
    mean_phase_length: float = 20.0
    mean_duration: float = 5.0
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)

    def __post_init__(self) -> None:
        for name in ("burst_interarrival", "calm_interarrival",
                     "mean_phase_length", "mean_duration"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")

    def generate(self, count: int,
                 rng: np.random.Generator | int | None = None) -> list[VM]:
        rng = _coerce_rng(rng)
        switch_p = 1.0 / self.mean_phase_length
        in_burst = True
        clock = 0.0
        arrivals = np.empty(count, dtype=int)
        for i in range(count):
            mean = (self.burst_interarrival if in_burst
                    else self.calm_interarrival)
            clock += rng.exponential(mean)
            arrivals[i] = 1 + int(clock)
            if rng.random() < switch_p:
                in_burst = not in_burst
        durations = np.maximum(
            1, np.rint(rng.exponential(self.mean_duration,
                                       size=count))).astype(int)
        types = rng.integers(len(self.vm_types), size=count)
        return _build_vms(arrivals, durations, types, self.vm_types)


@dataclass(frozen=True)
class DiurnalWorkload:
    """Sinusoidally modulated arrival rate with a fixed period.

    The instantaneous arrival rate is
    ``base_rate * (1 + amplitude * sin(2*pi*t/period))``, sampled by
    thinning a dominating Poisson process — the standard simulation of a
    non-homogeneous Poisson process.
    """

    base_interarrival: float
    period: float = 1440.0  # one day of minutes
    amplitude: float = 0.8
    mean_duration: float = 5.0
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)

    def __post_init__(self) -> None:
        if self.base_interarrival <= 0:
            raise ValidationError("base_interarrival must be positive")
        if self.period <= 0:
            raise ValidationError("period must be positive")
        if not 0 <= self.amplitude <= 1:
            raise ValidationError(
                f"amplitude must be within [0, 1], got {self.amplitude}")
        if self.mean_duration <= 0:
            raise ValidationError("mean_duration must be positive")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")

    def generate(self, count: int,
                 rng: np.random.Generator | int | None = None) -> list[VM]:
        rng = _coerce_rng(rng)
        base_rate = 1.0 / self.base_interarrival
        peak_rate = base_rate * (1 + self.amplitude)
        clock = 0.0
        arrivals = np.empty(count, dtype=int)
        accepted = 0
        while accepted < count:
            clock += rng.exponential(1.0 / peak_rate)
            rate = base_rate * (
                1 + self.amplitude * np.sin(2 * np.pi * clock / self.period))
            if rng.random() < rate / peak_rate:
                arrivals[accepted] = 1 + int(clock)
                accepted += 1
        durations = np.maximum(
            1, np.rint(rng.exponential(self.mean_duration,
                                       size=count))).astype(int)
        types = rng.integers(len(self.vm_types), size=count)
        return _build_vms(arrivals, durations, types, self.vm_types)


@dataclass(frozen=True)
class HeavyTailWorkload:
    """Poisson arrivals with Pareto (heavy-tailed) durations.

    ``shape`` is the Pareto tail index; values just above 1 give very heavy
    tails. The scale is chosen so the distribution's mean equals
    ``mean_duration`` (requires ``shape > 1``).
    """

    mean_interarrival: float
    mean_duration: float = 5.0
    shape: float = 1.5
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValidationError("mean_interarrival must be positive")
        if self.mean_duration <= 0:
            raise ValidationError("mean_duration must be positive")
        if self.shape <= 1:
            raise ValidationError(
                f"shape must exceed 1 for a finite mean, got {self.shape}")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")

    def generate(self, count: int,
                 rng: np.random.Generator | int | None = None) -> list[VM]:
        rng = _coerce_rng(rng)
        gaps = rng.exponential(self.mean_interarrival, size=count)
        arrivals = 1 + np.floor(np.cumsum(gaps)).astype(int)
        scale = self.mean_duration * (self.shape - 1) / self.shape
        durations = np.maximum(
            1, np.rint(scale * (1 + rng.pareto(self.shape,
                                               size=count)))).astype(int)
        types = rng.integers(len(self.vm_types), size=count)
        return _build_vms(arrivals, durations, types, self.vm_types)
