"""Trace transforms: reshape recorded workloads without regenerating.

Capacity studies rarely use a trace as-is: they stretch it in time
("what if everything ran twice as long?"), thin or thicken it ("80 % of
current traffic"), slice out a window, or merge traffic from several
sources. These transforms operate on plain ``Sequence[VM]`` and return
fresh VM lists with dense ids, so they compose with every allocator,
solver and analysis in the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.model.intervals import TimeInterval
from repro.model.vm import VM

__all__ = ["scale_time", "scale_load", "slice_window", "merge_traces",
           "shift"]


def _renumber(vms: Sequence[VM]) -> list[VM]:
    ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
    return [VM(vm_id=i, spec=vm.spec, interval=vm.interval)
            for i, vm in enumerate(ordered)]


def scale_time(vms: Sequence[VM], factor: float) -> list[VM]:
    """Stretch (or compress) the time axis by ``factor``.

    Starts and durations scale together, keeping relative overlap
    structure; results are rounded to the integer grid with durations of
    at least one time unit, and starts clamped to >= 1.
    """
    if factor <= 0:
        raise ValidationError(f"factor must be positive, got {factor}")
    scaled = []
    for vm in vms:
        start = max(1, int(round((vm.start - 1) * factor)) + 1)
        duration = max(1, int(round(vm.duration * factor)))
        scaled.append(VM(vm_id=vm.vm_id, spec=vm.spec,
                         interval=TimeInterval(start,
                                               start + duration - 1)))
    return _renumber(scaled)


def scale_load(vms: Sequence[VM], fraction: float,
               seed: int | None = None) -> list[VM]:
    """Keep a uniform random ``fraction`` of the VMs (thinning).

    ``fraction`` may exceed 1, in which case the trace is duplicated
    whole ``floor(fraction)`` times plus a thinned remainder — a simple
    way to model traffic growth.
    """
    if fraction < 0:
        raise ValidationError(
            f"fraction must be non-negative, got {fraction}")
    rng = np.random.default_rng(seed)
    copies = int(fraction)
    remainder = fraction - copies
    kept: list[VM] = []
    for _ in range(copies):
        kept.extend(vms)
    if remainder > 0:
        mask = rng.random(len(vms)) < remainder
        kept.extend(vm for vm, keep in zip(vms, mask) if keep)
    return _renumber(kept)


def slice_window(vms: Sequence[VM], start: int, end: int, *,
                 clip: bool = True) -> list[VM]:
    """VMs overlapping the closed window ``[start, end]``.

    With ``clip=True`` (default) intervals are truncated to the window
    and re-based so the window starts at time 1; with ``clip=False`` the
    overlapping VMs are returned unmodified.
    """
    if end < start:
        raise ValidationError(f"window end {end} precedes start {start}")
    window = TimeInterval(start, end)
    selected = [vm for vm in vms if vm.interval.overlaps(window)]
    if not clip:
        return _renumber(selected)
    clipped = []
    for vm in selected:
        piece = vm.interval.intersection(window)
        assert piece is not None  # selected means overlapping
        clipped.append(VM(
            vm_id=vm.vm_id, spec=vm.spec,
            interval=piece.shift(1 - start)))
    return _renumber(clipped)


def merge_traces(*traces: Sequence[VM]) -> list[VM]:
    """Superimpose several workloads onto one timeline."""
    merged: list[VM] = []
    for trace in traces:
        merged.extend(trace)
    return _renumber(merged)


def shift(vms: Sequence[VM], delta: int) -> list[VM]:
    """Translate every interval by ``delta`` time units (>= 1 preserved)."""
    if vms and min(vm.start for vm in vms) + delta < 1:
        raise ValidationError(
            f"shift by {delta} would move a VM before time 1")
    return _renumber([
        VM(vm_id=vm.vm_id, spec=vm.spec, interval=vm.interval.shift(delta))
        for vm in vms])
