"""Workloads with time-varying (phased) VM demand.

Real VM CPU usage is rarely flat: jobs ramp up, compute, and drain. This
generator produces :class:`~repro.model.phases.PhasedVM` requests whose
lifetime splits into 1-``max_phases`` consecutive phases; CPU demand per
phase is a random fraction of the VM type's nominal demand (one phase
always runs at the full nominal level, which is therefore the peak the
scheduler must reserve against), while memory stays flat — the common
shape of batch and service workloads.

Arrival and duration statistics match the paper's Poisson model, so
stable-vs-phased comparisons isolate the effect of demand variability.

With ``uncertainty > 0`` every generated VM additionally declares a
demand *interval*: its spec carries ``cpu_radius = uncertainty * cpu``
and ``mem_radius = uncertainty * memory``, feeding Γ-robust placement
(:mod:`repro.robust`). At the default 0 the specs are the shared
catalog entries, radius-free, and generation is bit-identical to
earlier releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.model.catalog import ALL_VM_TYPES
from repro.model.intervals import TimeInterval
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.vm import VMSpec

__all__ = ["PhasedWorkload"]


@dataclass(frozen=True)
class PhasedWorkload:
    """Poisson arrivals of phased-demand VMs."""

    mean_interarrival: float
    mean_duration: float = 5.0
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)
    max_phases: int = 3
    min_load_fraction: float = 0.3
    uncertainty: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValidationError("mean_interarrival must be positive")
        if self.mean_duration <= 0:
            raise ValidationError("mean_duration must be positive")
        if self.max_phases < 1:
            raise ValidationError(
                f"max_phases must be >= 1, got {self.max_phases}")
        if not 0 < self.min_load_fraction <= 1:
            raise ValidationError(
                "min_load_fraction must be in (0, 1], got "
                f"{self.min_load_fraction}")
        if not 0 <= self.uncertainty <= 1:
            raise ValidationError(
                f"uncertainty must be in [0, 1], got {self.uncertainty}")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")

    def generate(self, count: int,
                 rng: np.random.Generator | int | None = None
                 ) -> list[PhasedVM]:
        """Draw ``count`` phased VM requests, ids by arrival order."""
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        gaps = rng.exponential(self.mean_interarrival, size=count)
        arrivals = 1 + np.floor(np.cumsum(gaps)).astype(int)
        durations = np.maximum(
            1, np.rint(rng.exponential(self.mean_duration,
                                       size=count))).astype(int)
        type_indices = rng.integers(len(self.vm_types), size=count)
        specs = self.vm_types
        if self.uncertainty > 0:
            specs = tuple(
                VMSpec(name=s.name, cpu=s.cpu, memory=s.memory,
                       cpu_radius=self.uncertainty * s.cpu,
                       mem_radius=self.uncertainty * s.memory)
                for s in self.vm_types)
        vms = []
        for i in range(count):
            spec = specs[int(type_indices[i])]
            duration = int(durations[i])
            phases = self._draw_phases(rng, spec, duration)
            vms.append(PhasedVM(
                vm_id=i, spec=spec,
                interval=TimeInterval(int(arrivals[i]),
                                      int(arrivals[i]) + duration - 1),
                phases=phases))
        return vms

    def _draw_phases(self, rng: np.random.Generator, spec: VMSpec,
                     duration: int) -> tuple[DemandPhase, ...]:
        n_phases = int(rng.integers(1, min(self.max_phases, duration) + 1))
        # Random composition of `duration` into n_phases positive parts.
        if n_phases == 1:
            lengths = [duration]
        else:
            cuts = np.sort(rng.choice(np.arange(1, duration),
                                      size=n_phases - 1, replace=False))
            bounds = np.concatenate(([0], cuts, [duration]))
            lengths = list(np.diff(bounds).astype(int))
        fractions = rng.uniform(self.min_load_fraction, 1.0,
                                size=n_phases)
        fractions[int(rng.integers(n_phases))] = 1.0  # peak phase
        return tuple(
            DemandPhase(duration=int(length),
                        cpu=float(spec.cpu * fraction),
                        memory=spec.memory)
            for length, fraction in zip(lengths, fractions))
