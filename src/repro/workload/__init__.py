"""Workload substrate: the paper's Poisson generator, extended traffic
families, and trace persistence."""

from repro.workload.generator import PoissonWorkload, generate_vms
from repro.workload.patterns import (
    BurstyWorkload,
    DiurnalWorkload,
    HeavyTailWorkload,
)
from repro.workload.characterize import (
    WorkloadStats,
    characterize,
    synthetic_twin,
)
from repro.workload.phased import PhasedWorkload
from repro.workload.trace import Trace
from repro.workload.transforms import (
    merge_traces,
    scale_load,
    scale_time,
    shift,
    slice_window,
)

__all__ = [
    "PoissonWorkload",
    "generate_vms",
    "BurstyWorkload",
    "DiurnalWorkload",
    "HeavyTailWorkload",
    "WorkloadStats",
    "characterize",
    "synthetic_twin",
    "PhasedWorkload",
    "Trace",
    "merge_traces",
    "scale_load",
    "scale_time",
    "shift",
    "slice_window",
]
