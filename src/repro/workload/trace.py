"""Trace persistence: save and reload workloads as CSV or JSON.

A :class:`Trace` freezes a generated workload so experiments can be rerun
bit-for-bit, shared, or replayed through the discrete-event simulator. The
CSV schema is one VM per row (``vm_id,type,cpu,memory,start,end``); JSON
wraps the same records with a small metadata header.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.exceptions import ValidationError
from repro.model.intervals import TimeInterval
from repro.model.phases import DemandPhase, PhasedVM
from repro.model.vm import VM, VMSpec

__all__ = ["Trace", "vm_to_record", "vm_from_record"]

_CSV_FIELDS = ("vm_id", "type", "cpu", "memory", "start", "end")
_FORMAT_VERSION = 1


def vm_to_record(vm: VM) -> dict[str, object]:
    """The JSON-friendly record of one VM request.

    This is the canonical wire/file shape shared by JSON traces and the
    allocation service's JSON-lines protocol: ``vm_id``, ``type``,
    ``cpu``, ``memory``, ``start``, ``end``, plus ``phases`` for
    :class:`~repro.model.phases.PhasedVM` and ``cpu_radius`` /
    ``mem_radius`` for uncertain demand. The radius keys are emitted
    only when nonzero, so records of exact-demand VMs — and therefore
    existing journals, snapshots and traces — stay byte-identical.
    """
    record: dict[str, object] = {
        "vm_id": vm.vm_id, "type": vm.spec.name, "cpu": vm.cpu,
        "memory": vm.memory, "start": vm.start, "end": vm.end,
    }
    if vm.spec.cpu_radius != 0.0:
        record["cpu_radius"] = vm.spec.cpu_radius
    if vm.spec.mem_radius != 0.0:
        record["mem_radius"] = vm.spec.mem_radius
    if isinstance(vm, PhasedVM):
        record["phases"] = [
            {"duration": p.duration, "cpu": p.cpu, "memory": p.memory}
            for p in vm.phases
        ]
    return record


def vm_from_record(record: Mapping[str, object]) -> VM:
    """Rebuild a :class:`VM` (or :class:`PhasedVM`) from its record.

    Raises ``TypeError``/``KeyError``/``ValueError`` on malformed input;
    callers wrap these with their own context (file line, request id).
    """
    spec = VMSpec(name=str(record["type"]), cpu=float(record["cpu"]),
                  memory=float(record["memory"]),
                  cpu_radius=float(record.get("cpu_radius", 0.0)),
                  mem_radius=float(record.get("mem_radius", 0.0)))
    interval = TimeInterval(int(record["start"]), int(record["end"]))
    if record.get("phases") is not None:
        phases = tuple(
            DemandPhase(duration=int(p["duration"]), cpu=float(p["cpu"]),
                        memory=float(p["memory"]))
            for p in record["phases"])
        return PhasedVM(vm_id=int(record["vm_id"]), spec=spec,
                        interval=interval, phases=phases)
    return VM(vm_id=int(record["vm_id"]), spec=spec, interval=interval)


@dataclass(frozen=True)
class Trace:
    """An immutable, order-preserving collection of VM requests."""

    vms: tuple[VM, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def from_vms(cls, vms: Iterable[VM],
                 **metadata: object) -> "Trace":
        return cls(vms=tuple(vms), metadata=dict(metadata))

    def __len__(self) -> int:
        return len(self.vms)

    def __iter__(self) -> Iterator[VM]:
        return iter(self.vms)

    @property
    def horizon(self) -> int:
        """Last active time unit across the trace (0 when empty)."""
        return max((vm.end for vm in self.vms), default=0)

    # -- CSV ---------------------------------------------------------------

    def save_csv(self, path: str | Path) -> None:
        """Write one VM per row under the fixed six-column schema."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_CSV_FIELDS)
            for vm in self.vms:
                writer.writerow([vm.vm_id, vm.spec.name, vm.cpu, vm.memory,
                                 vm.start, vm.end])

    @classmethod
    def load_csv(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save_csv`."""
        path = Path(path)
        vms = []
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None or \
                    tuple(reader.fieldnames) != _CSV_FIELDS:
                raise ValidationError(
                    f"{path}: expected header {_CSV_FIELDS}, got "
                    f"{reader.fieldnames}")
            for line, row in enumerate(reader, start=2):
                try:
                    spec = VMSpec(name=row["type"], cpu=float(row["cpu"]),
                                  memory=float(row["memory"]))
                    vms.append(VM(
                        vm_id=int(row["vm_id"]), spec=spec,
                        interval=TimeInterval(int(row["start"]),
                                              int(row["end"]))))
                except (TypeError, KeyError, ValueError) as exc:
                    raise ValidationError(
                        f"{path}:{line}: malformed trace row {row!r}: {exc}"
                    ) from exc
        return cls(vms=tuple(vms), metadata={"source": str(path)})

    # -- JSON --------------------------------------------------------------

    def save_json(self, path: str | Path) -> None:
        """Write the trace with metadata as a single JSON document.

        Phased VMs persist their demand phases; CSV, by contrast, stores
        only the flat six-column schema (use JSON for phased traces).
        """
        records = [vm_to_record(vm) for vm in self.vms]
        document = {
            "format_version": _FORMAT_VERSION,
            "metadata": dict(self.metadata),
            "vms": records,
        }
        Path(path).write_text(json.dumps(document, indent=2))

    @classmethod
    def load_json(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save_json`."""
        path = Path(path)
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
        version = document.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValidationError(
                f"{path}: unsupported trace format version {version!r}")
        vms = []
        for i, record in enumerate(document.get("vms", [])):
            try:
                vms.append(vm_from_record(record))
            except (TypeError, KeyError, ValueError) as exc:
                raise ValidationError(
                    f"{path}: malformed VM record #{i}: {exc}") from exc
        return cls(vms=tuple(vms),
                   metadata=dict(document.get("metadata", {})))
