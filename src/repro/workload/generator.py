"""Workload generation following the paper's Sec. IV-B1.

VM requests arrive according to a **Poisson process** (exponential
inter-arrival times with configurable mean); each VM's length follows an
**exponential distribution** with configurable mean; starting and finishing
times are integers; and each VM's resource demand is drawn uniformly from a
set of Table I types and stays stable for its lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.model.catalog import ALL_VM_TYPES
from repro.model.intervals import TimeInterval
from repro.model.vm import VM, VMSpec

__all__ = ["PoissonWorkload", "generate_vms"]


@dataclass(frozen=True)
class PoissonWorkload:
    """The paper's workload family.

    Parameters
    ----------
    mean_interarrival:
        Mean time between consecutive VM arrivals, in time units. The
        paper sweeps this from 0.5 to 10 minutes.
    mean_duration:
        Mean VM length in time units (paper: 2, 5 or 10; default 5).
    vm_types:
        The Table I types to sample uniformly (default: all nine).
    """

    mean_interarrival: float
    mean_duration: float = 5.0
    vm_types: tuple[VMSpec, ...] = field(default=ALL_VM_TYPES)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValidationError(
                f"mean_interarrival must be positive, got "
                f"{self.mean_interarrival}")
        if self.mean_duration <= 0:
            raise ValidationError(
                f"mean_duration must be positive, got {self.mean_duration}")
        if not self.vm_types:
            raise ValidationError("vm_types must be non-empty")

    def generate(self, count: int,
                 rng: np.random.Generator | int | None = None) -> list[VM]:
        """Draw ``count`` VM requests, ids ``0..count-1`` by arrival order.

        Arrival times accumulate exponential inter-arrival gaps and are
        floored to integer time units starting at 1; durations are
        exponential, rounded to at least one time unit.
        """
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        gaps = rng.exponential(self.mean_interarrival, size=count)
        arrivals = 1 + np.floor(np.cumsum(gaps)).astype(int)
        durations = np.maximum(
            1, np.rint(rng.exponential(self.mean_duration,
                                       size=count))).astype(int)
        type_indices = rng.integers(len(self.vm_types), size=count)
        vms = []
        for i in range(count):
            start = int(arrivals[i])
            end = start + int(durations[i]) - 1
            vms.append(VM(vm_id=i, spec=self.vm_types[int(type_indices[i])],
                          interval=TimeInterval(start, end)))
        return vms


def generate_vms(count: int, mean_interarrival: float,
                 mean_duration: float = 5.0,
                 vm_types: Sequence[VMSpec] = ALL_VM_TYPES,
                 seed: int | None = None) -> list[VM]:
    """One-call convenience wrapper around :class:`PoissonWorkload`."""
    workload = PoissonWorkload(mean_interarrival=mean_interarrival,
                               mean_duration=mean_duration,
                               vm_types=tuple(vm_types))
    return workload.generate(count, rng=seed)
