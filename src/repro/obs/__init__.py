"""Decision tracing and instrumentation (zero-dependency).

Designed to cost ~nothing when disabled:

* :mod:`repro.obs.tracer` — nested spans, instants and counters on a
  monotonic clock, behind a process-global tracer that defaults to a
  no-op (:func:`get_tracer` / :func:`set_tracer` / :func:`use_tracer`);
* :mod:`repro.obs.context` — ``trace_id``/``request_id`` propagation:
  one id correlates a request across client, daemon spans, journal and
  logs;
* :mod:`repro.obs.logging` — structured JSON logging with levels,
  per-event rate limiting and trace-id correlation, behind the same
  process-global no-op pattern (:func:`get_logger` et al.);
* :mod:`repro.obs.telemetry` — the bounded per-tick fleet telemetry
  ring behind the ``telemetry`` protocol op and ``repro top``;
* :mod:`repro.obs.slo` — latency/availability objectives with
  multi-window burn rates (``repro_slo_*`` metrics, ``repro slo``);
* :mod:`repro.obs.flight` — the flight recorder: a bounded ring of
  recent request/response tuples dumped via ``dump_debug`` and on
  unhandled daemon errors;
* :mod:`repro.obs.explain` — per-placement explain-traces: the candidate
  set each allocator evaluated, per-candidate feasibility verdicts and
  the Eq.-2/3 cost terms that ranked them;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (for
  ``chrome://tracing`` / Perfetto) and JSONL event logs.

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.context import (
    TraceContext,
    new_request_id,
    new_trace_id,
    trace_context_of,
)
from repro.obs.explain import (
    CandidateVerdict,
    CostTerms,
    ExplainRecorder,
    PlacementExplanation,
    format_decision_table,
)
from repro.obs.export import (
    load_chrome_trace,
    read_jsonl,
    summarize_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flight import (
    FlightRecord,
    FlightRecorder,
)
from repro.obs.logging import (
    NULL_LOGGER,
    JsonLogger,
    NullLogger,
    get_logger,
    set_logger,
    use_logger,
)
from repro.obs.slo import (
    SLOConfig,
    SLOTracker,
)
from repro.obs.telemetry import (
    TelemetryRing,
    TelemetrySample,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CandidateVerdict",
    "CostTerms",
    "ExplainRecorder",
    "PlacementExplanation",
    "format_decision_table",
    "load_chrome_trace",
    "read_jsonl",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "TraceContext",
    "new_trace_id",
    "new_request_id",
    "trace_context_of",
    "NULL_LOGGER",
    "JsonLogger",
    "NullLogger",
    "get_logger",
    "set_logger",
    "use_logger",
    "TelemetryRing",
    "TelemetrySample",
    "SLOConfig",
    "SLOTracker",
    "FlightRecord",
    "FlightRecorder",
]
