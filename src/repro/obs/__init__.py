"""Decision tracing and instrumentation (zero-dependency).

Three pieces, designed to cost ~nothing when disabled:

* :mod:`repro.obs.tracer` — nested spans, instants and counters on a
  monotonic clock, behind a process-global tracer that defaults to a
  no-op (:func:`get_tracer` / :func:`set_tracer` / :func:`use_tracer`);
* :mod:`repro.obs.explain` — per-placement explain-traces: the candidate
  set each allocator evaluated, per-candidate feasibility verdicts and
  the Eq.-2/3 cost terms that ranked them;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (for
  ``chrome://tracing`` / Perfetto) and JSONL event logs.

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.explain import (
    CandidateVerdict,
    CostTerms,
    ExplainRecorder,
    PlacementExplanation,
    format_decision_table,
)
from repro.obs.export import (
    load_chrome_trace,
    read_jsonl,
    summarize_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CandidateVerdict",
    "CostTerms",
    "ExplainRecorder",
    "PlacementExplanation",
    "format_decision_table",
    "load_chrome_trace",
    "read_jsonl",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
