"""The flight recorder: a bounded ring of recent request outcomes.

A :class:`FlightRecorder` keeps the last N request/response tuples —
op, trace ids, outcome, latency, compacted request and response
payloads, and the error (if any). When something goes wrong in a
daemon that has been running for hours, the recorder answers *"what
were the last requests before this?"* without any log shipping:

* the ``dump_debug`` protocol op returns the ring over the wire (also
  fired by the chaos :class:`~repro.service.faults.FaultInjector`);
* an unhandled daemon error dumps the ring automatically to a
  ``flight-dump-*.json`` file in the data dir — a black box for the
  post-mortem.

Payloads are *compacted* before recording: internal ``_``-prefixed
fields (parsed VM objects) are dropped, long lists are truncated to
their head with a ``"... (+N more)"`` marker, and long strings are
clipped — a 10 000-VM batch records as a handful of entries, keeping
ring memory bounded regardless of request size.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Mapping

from repro.exceptions import ValidationError

__all__ = ["FlightRecord", "FlightRecorder"]

#: Compaction bounds: list head kept / string prefix kept.
MAX_LIST_ITEMS = 16
MAX_STRING_LENGTH = 256


def _compact(value: object, depth: int = 0) -> object:
    """A bounded copy of ``value``: long lists/strings clipped."""
    if depth > 6:
        return "..."
    if isinstance(value, str):
        if len(value) > MAX_STRING_LENGTH:
            return value[:MAX_STRING_LENGTH] \
                + f"... (+{len(value) - MAX_STRING_LENGTH} chars)"
        return value
    if isinstance(value, Mapping):
        return {str(k): _compact(v, depth + 1)
                for k, v in value.items()
                if not str(k).startswith("_")}
    if isinstance(value, (list, tuple)):
        items = [_compact(v, depth + 1) for v in value[:MAX_LIST_ITEMS]]
        if len(value) > MAX_LIST_ITEMS:
            items.append(f"... (+{len(value) - MAX_LIST_ITEMS} more)")
        return items
    return value


class FlightRecord:
    """One recorded request/response tuple.

    Payload compaction is deferred to first access: the hot record
    path stores raw references only, and the bounded copies are built
    (then cached) when the ring is actually read — a dump, the
    ``dump_debug`` op, or a test poking at ``.request``. The daemon
    never mutates a request or response after the handler returns, so
    the deferred copy observes the same payload an eager one would.
    """

    __slots__ = ("seq", "op", "trace_id", "request_id", "ok",
                 "latency_ms", "error", "_raw_request", "_raw_response",
                 "_request", "_response")

    def __init__(self, *, seq: int, op: str, trace_id: str,
                 request_id: str, ok: bool, latency_ms: float,
                 request: Mapping | None, response: Mapping | None,
                 error: str | None = None) -> None:
        self.seq = seq
        self.op = op
        self.trace_id = trace_id
        self.request_id = request_id
        self.ok = ok
        self.latency_ms = latency_ms
        self.error = error
        self._raw_request = request
        self._raw_response = response
        self._request: dict | None = None
        self._response: dict | None = None

    @property
    def request(self) -> dict:
        if self._request is None:
            self._request = _compact(self._raw_request or {})
        return self._request

    @property
    def response(self) -> dict:
        if self._response is None:
            self._response = _compact(self._raw_response or {})
        return self._response

    def to_record(self) -> dict[str, object]:
        record: dict[str, object] = {
            "seq": self.seq, "op": self.op, "trace_id": self.trace_id,
            "request_id": self.request_id, "ok": self.ok,
            "latency_ms": self.latency_ms, "request": self.request,
            "response": self.response}
        if self.error is not None:
            record["error"] = self.error
        return record


class FlightRecorder:
    """A bounded, thread-safe ring of the last N request outcomes.

    Capacity 0 disables recording entirely (``record`` is a no-op) —
    the observability-off configuration.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValidationError(
                f"flight capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._records: list[FlightRecord] = []
        self._start = 0
        self._lock = threading.Lock()
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, *, op: str, trace_id: str, request_id: str,
               ok: bool, latency_ms: float, request: Mapping | None,
               response: Mapping | None,
               error: str | None = None) -> None:
        """Record one finished request (compaction happens on read)."""
        if self.capacity == 0:
            return
        with self._lock:
            self._seq += 1
            entry = FlightRecord(
                seq=self._seq, op=op, trace_id=trace_id,
                request_id=request_id, ok=ok,
                latency_ms=round(latency_ms, 3),
                request=request, response=response,
                error=error)
            if len(self._records) < self.capacity:
                self._records.append(entry)
            else:
                self._records[self._start] = entry
                self._start = (self._start + 1) % self.capacity

    def last(self, n: int | None = None) -> tuple[FlightRecord, ...]:
        """The newest ``n`` records (all when ``None``), oldest first."""
        if n is not None and n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        with self._lock:
            ordered = self._records[self._start:] \
                + self._records[:self._start]
        if n is not None:
            ordered = ordered[len(ordered) - min(n, len(ordered)):]
        return tuple(ordered)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._start = 0

    def dump(self, n: int | None = None) -> list[dict[str, object]]:
        """The newest ``n`` records as JSON-safe dicts, oldest first."""
        return [record.to_record() for record in self.last(n)]

    def dump_to(self, path: str | Path, *,
                reason: str = "manual") -> Path:
        """Write the ring to ``path`` as a JSON document; returns it."""
        path = Path(path)
        document = {"reason": reason, "records": self.dump()}
        path.write_text(json.dumps(document, indent=2, default=str))
        return path
