"""The fleet telemetry ring: bounded per-tick time series of live state.

The daemon records one :class:`TelemetrySample` per cluster tick —
servers by power state, instantaneous Eq.-1 fleet power, cumulative
Eq.-17 energy, the :class:`~repro.consolidation.fragmentation`
score, inflight/pending counts — into a bounded :class:`TelemetryRing`
(oldest samples fall off; memory is constant however long the daemon
runs). The ring answers the protocol-v2 ``telemetry`` op (what
``repro top`` polls), serializes to JSON records, and exports as
Chrome-trace counter series on the simulated-time track so a whole
day of fleet history opens in Perfetto next to the request spans.

Within a tick the *latest* state wins: recording a sample whose tick
equals the newest recorded tick replaces it instead of appending, so
the series holds at most one sample per tick and reads as a clean
step function.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Mapping, Sequence

from repro.exceptions import ValidationError
from repro.obs.tracer import COUNTER, TraceEvent

__all__ = ["TelemetrySample", "TelemetryRing"]

#: Nanoseconds per simulated tick on the Chrome-trace axis (one tick
#: renders as 1 µs, matching :mod:`repro.simulation.telemetry`).
_NS_PER_TICK = 1000


@dataclass(frozen=True)
class TelemetrySample:
    """One tick's fleet state, as sampled by the daemon."""

    tick: int
    servers_active: int
    servers_asleep: int
    servers_failed: int
    running_vms: int
    fleet_power: float
    energy_accumulated: float
    fragmentation: float
    inflight: int
    pending: int
    placed: int
    rejected: int

    def to_record(self) -> dict[str, object]:
        """A JSON-safe record (the ``telemetry`` op's sample shape)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TelemetrySample":
        kwargs = {}
        for f in record_fields():
            value = record[f.name]
            kwargs[f.name] = f.type_cast(value)
        return cls(**kwargs)  # type: ignore[arg-type]


class _Field:
    __slots__ = ("name", "type_cast")

    def __init__(self, name: str, type_cast) -> None:
        self.name = name
        self.type_cast = type_cast


def record_fields() -> tuple[_Field, ...]:
    """Field names and coercions of the sample record shape."""
    casts = {"fleet_power": float, "energy_accumulated": float,
             "fragmentation": float}
    return tuple(_Field(f.name, casts.get(f.name, int))
                 for f in fields(TelemetrySample))


class TelemetryRing:
    """A bounded, thread-safe ring of per-tick telemetry samples.

    ``capacity`` bounds memory: the ring holds the newest ``capacity``
    ticks. Capacity 0 disables the ring entirely (every record is a
    no-op) — what ``repro serve --telemetry-capacity 0`` and the
    observability-off benchmark configuration use.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValidationError(
                f"telemetry capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._samples: list[TelemetrySample] = []
        self._start = 0  # ring head index into _samples once full
        self._lock = threading.Lock()
        self.recorded = 0  # lifetime samples accepted (incl. replaced)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, sample: TelemetrySample) -> None:
        """Append ``sample``; a same-tick sample replaces the newest."""
        if self.capacity == 0:
            return
        with self._lock:
            self.recorded += 1
            if self._samples:
                newest = (self._start - 1) % len(self._samples)
                if self._samples[newest].tick == sample.tick:
                    self._samples[newest] = sample
                    return
                if self._samples[newest].tick > sample.tick:
                    # Out-of-order ticks never happen on the commit
                    # path; drop rather than corrupt the series.
                    return
            if len(self._samples) < self.capacity:
                self._samples.append(sample)
            else:
                self._samples[self._start] = sample
                self._start = (self._start + 1) % self.capacity

    def last(self, n: int | None = None) -> tuple[TelemetrySample, ...]:
        """The newest ``n`` samples (all of them when ``n`` is None),
        oldest first."""
        if n is not None and n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        with self._lock:
            ordered = self._samples[self._start:] \
                + self._samples[:self._start]
        if n is not None:
            ordered = ordered[len(ordered) - min(n, len(ordered)):]
        return tuple(ordered)

    def latest(self) -> TelemetrySample | None:
        """The newest sample, or ``None`` while the ring is empty."""
        samples = self.last(1)
        return samples[0] if samples else None

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._start = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def to_records(self, n: int | None = None) -> list[dict[str, object]]:
        """The newest ``n`` samples as JSON-safe records, oldest first."""
        return [sample.to_record() for sample in self.last(n)]

    def to_counter_events(self) -> list[TraceEvent]:
        """The ring as Chrome-trace counter series on simulated time.

        Three tracks — ``fleet.servers`` (active/asleep/failed),
        ``fleet.power`` (instantaneous watts), ``fleet.load``
        (running VMs, inflight) — one sample per recorded tick, ready
        to append to a tracer's events before export.
        """
        events: list[TraceEvent] = []
        for sample in self.last():
            ts_ns = sample.tick * _NS_PER_TICK
            events.append(TraceEvent(
                kind=COUNTER, name="fleet.servers", ts_ns=ts_ns,
                clock="sim",
                args={"active": sample.servers_active,
                      "asleep": sample.servers_asleep,
                      "failed": sample.servers_failed}))
            events.append(TraceEvent(
                kind=COUNTER, name="fleet.power", ts_ns=ts_ns,
                clock="sim", args={"watts": sample.fleet_power}))
            events.append(TraceEvent(
                kind=COUNTER, name="fleet.load", ts_ns=ts_ns,
                clock="sim",
                args={"running_vms": sample.running_vms,
                      "inflight": sample.inflight}))
        return events


def samples_from_records(records: Sequence[Mapping[str, object]]
                         ) -> list[TelemetrySample]:
    """Decode a ``telemetry`` op response's sample array (client side)."""
    return [TelemetrySample.from_record(record) for record in records]
