"""Service-level objectives: latency/availability targets and burn rates.

An :class:`SLOTracker` observes every request outcome (latency, ok/error)
and answers two operator questions:

* **Are we meeting the objectives right now?** Per-window *burn rates*:
  for each trailing window (default 1 min / 5 min / 1 h), the fraction
  of bad events divided by the objective's error budget
  ``1 - target``. Burn 1.0 means the budget is being spent exactly as
  fast as allowed; above 1.0 the objective will be missed if the rate
  holds. Multi-window burn is the standard alerting shape — a short
  window catches a fast burn, a long window a slow leak.
* **What happened overall?** Lifetime totals (requests, errors, slow
  requests) for the ``repro_slo_*`` Prometheus families and the
  ``repro slo`` CLI report.

Two objectives are tracked:

* **latency** — a request is *fast* when it finishes within
  ``latency_objective`` seconds; the target is the fraction of requests
  that must be fast (e.g. 0.99 → "99% of requests under 100 ms").
* **availability** — a request is *good* when it does not error; the
  target is the fraction that must be good (e.g. 0.999).

Observations live in a bounded deque pruned to the longest window, so
memory stays constant under sustained load.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.exceptions import ValidationError

__all__ = ["SLOConfig", "SLOTracker"]

#: Default trailing windows (seconds): fast burn / medium / slow leak.
DEFAULT_WINDOWS = (60.0, 300.0, 3600.0)

#: Cap on retained observations; beyond this the oldest are evicted
#: even inside the longest window (protects memory under load spikes).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class SLOConfig:
    """The objectives a service is held to.

    ``latency_objective`` is the per-request latency threshold in
    seconds; ``latency_target`` / ``availability_target`` are the
    required good fractions in (0, 1); ``windows`` are the trailing
    burn-rate windows in seconds, ascending.
    """

    latency_objective: float = 0.1
    latency_target: float = 0.99
    availability_target: float = 0.999
    windows: tuple[float, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if self.latency_objective <= 0:
            raise ValidationError(
                f"latency_objective must be positive, got "
                f"{self.latency_objective}")
        for name in ("latency_target", "availability_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValidationError(
                    f"{name} must be in (0, 1), got {value}")
        if not self.windows:
            raise ValidationError("at least one burn-rate window required")
        object.__setattr__(self, "windows", tuple(
            float(w) for w in self.windows))
        previous = 0.0
        for window in self.windows:
            if window <= previous:
                raise ValidationError(
                    f"windows must be positive and ascending, got "
                    f"{self.windows}")
            previous = window

    def to_record(self) -> dict[str, object]:
        """A JSON-safe record (persisted in snapshot config)."""
        return {"latency_objective": self.latency_objective,
                "latency_target": self.latency_target,
                "availability_target": self.availability_target,
                "windows": list(self.windows)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "SLOConfig":
        return cls(
            latency_objective=float(record["latency_objective"]),
            latency_target=float(record["latency_target"]),
            availability_target=float(record["availability_target"]),
            windows=tuple(float(w) for w in record["windows"]))


class _Observation:
    __slots__ = ("ts", "fast", "ok")

    def __init__(self, ts: float, fast: bool, ok: bool) -> None:
        self.ts = ts
        self.fast = fast
        self.ok = ok


@dataclass
class _WindowBurn:
    """Burn rates of one trailing window (internal accumulator)."""

    window: float
    requests: int = 0
    slow: int = 0
    errors: int = 0
    latency_burn: float = 0.0
    availability_burn: float = 0.0
    extra: dict = field(default_factory=dict)


class SLOTracker:
    """Observes request outcomes; reports multi-window burn rates.

    Thread-safe. ``clock`` is injectable (monotonic seconds) so tests
    can step time deterministically.
    """

    def __init__(self, config: SLOConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValidationError(
                f"capacity must be positive, got {capacity}")
        self.config = config if config is not None else SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._observations: deque[_Observation] = deque(maxlen=capacity)
        self.requests = 0
        self.errors = 0
        self.slow = 0

    def observe(self, latency_seconds: float, *, ok: bool = True) -> None:
        """Record one finished request."""
        fast = latency_seconds <= self.config.latency_objective
        with self._lock:
            self.requests += 1
            if not ok:
                self.errors += 1
            if not fast:
                self.slow += 1
            self._observations.append(
                _Observation(self._clock(), fast, ok))
            self._prune(self._clock())

    def _prune(self, now: float) -> None:
        horizon = now - self.config.windows[-1]
        observations = self._observations
        while observations and observations[0].ts < horizon:
            observations.popleft()

    def _burns(self) -> list[_WindowBurn]:
        now = self._clock()
        latency_budget = 1.0 - self.config.latency_target
        availability_budget = 1.0 - self.config.availability_target
        burns = [_WindowBurn(window=w) for w in self.config.windows]
        with self._lock:
            self._prune(now)
            for obs in self._observations:
                age = now - obs.ts
                for burn in burns:
                    if age <= burn.window:
                        burn.requests += 1
                        if not obs.fast:
                            burn.slow += 1
                        if not obs.ok:
                            burn.errors += 1
        for burn in burns:
            if burn.requests:
                burn.latency_burn = \
                    (burn.slow / burn.requests) / latency_budget
                burn.availability_burn = \
                    (burn.errors / burn.requests) / availability_budget
        return burns

    def report(self) -> dict[str, object]:
        """The full objective report (the ``repro slo`` payload).

        ``healthy`` is True when no window burns above 1.0 — the error
        budget is being spent no faster than the objectives allow.
        """
        burns = self._burns()
        with self._lock:
            totals = {"requests": self.requests, "errors": self.errors,
                      "slow": self.slow}
        windows = [{
            "window_seconds": burn.window,
            "requests": burn.requests,
            "slow": burn.slow,
            "errors": burn.errors,
            "latency_burn_rate": round(burn.latency_burn, 6),
            "availability_burn_rate": round(burn.availability_burn, 6),
        } for burn in burns]
        healthy = all(burn.latency_burn <= 1.0
                      and burn.availability_burn <= 1.0 for burn in burns)
        return {"config": self.config.to_record(), "totals": totals,
                "windows": windows, "healthy": healthy}
