"""Explain-traces: why each VM landed where it did (or nowhere at all).

Every allocator run can emit, per placement decision, the *full candidate
set* it evaluated: which servers were infeasible and on which constraint
(CPU/MEM capacity, a capacity conflict with already-committed load during
the VM's interval, or a placement constraint), and — for the feasible
ones — the Eq.-2/3 cost terms that ranked them: the VM's run cost
``W_ij``, the change in busy-idle/gap energy, and the wake-up ``alpha_i``
a first transition would charge. The allocator's own ranking score rides
along (lower is always more preferred), so the chosen server is
reconstructible from the explanation alone.

Explanations are plain frozen dataclasses with a JSON round-trip
(:meth:`PlacementExplanation.to_record`), so they travel over the
service protocol (``"explain": true`` on a ``place`` request) and into
event logs unchanged. :func:`format_decision_table` renders a run's
explanations as the per-VM table behind ``repro explain``.

When the batch probe kernel is active, the explain sweep is one
``FleetKernel.probe_fleet`` call and the per-candidate verdicts —
including the reason *strings*, which only the explain path ever needs
— are materialized lazily from the array-backed
:class:`~repro.placement.kernels.FeasibilityBatch`
(``batch.reason(i)``), so ``explain=True`` output is identical to the
scalar sweep while the hot path never builds per-candidate objects.
The evaluated/feasible counters keep reflecting the embedded
``select`` run either way — what the algorithm probed, not the
exhaustive explain sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["CostTerms", "CandidateVerdict", "PlacementExplanation",
           "ExplainRecorder", "format_decision_table"]


@dataclass(frozen=True)
class CostTerms:
    """The Eq.-2/3/17 components of one candidate placement's cost.

    ``run`` is the VM's marginal run energy ``W_ij`` (Eq. 3); ``idle_gap``
    is the change in busy-idle power plus idle-gap costs under the active
    sleep policy; ``wake`` is the transition energy ``alpha_i`` charged
    when placing the VM would wake this server for the first time.
    """

    run: float
    idle_gap: float
    wake: float

    @property
    def total(self) -> float:
        """The incremental Eq.-17 cost the heuristic minimises."""
        return self.run + self.idle_gap + self.wake

    def to_record(self) -> dict[str, float]:
        return {"run": self.run, "idle_gap": self.idle_gap,
                "wake": self.wake}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "CostTerms":
        return cls(run=float(record["run"]),
                   idle_gap=float(record["idle_gap"]),
                   wake=float(record["wake"]))


@dataclass(frozen=True)
class CandidateVerdict:
    """One server's evaluation for one VM.

    Infeasible candidates carry a ``reason`` (``"cpu:capacity"``,
    ``"mem:capacity"``, ``"cpu:overlap@t"`` / ``"mem:overlap@t"`` with the
    first overloaded tick, or ``"constraint"``); feasible ones carry the
    cost terms and the allocator's ranking ``score`` (lower preferred;
    ``None`` when the algorithm ranks by no score, e.g. random fit).
    """

    server_id: int
    server_type: str
    feasible: bool
    reason: str | None = None
    cost: CostTerms | None = None
    score: float | None = None
    chosen: bool = False

    def to_record(self) -> dict[str, object]:
        record: dict[str, object] = {
            "server_id": self.server_id, "server_type": self.server_type,
            "feasible": self.feasible, "chosen": self.chosen}
        if self.reason is not None:
            record["reason"] = self.reason
        if self.cost is not None:
            record["cost"] = self.cost.to_record()
        if self.score is not None:
            record["score"] = self.score
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]
                    ) -> "CandidateVerdict":
        cost = record.get("cost")
        return cls(
            server_id=int(record["server_id"]),
            server_type=str(record.get("server_type", "")),
            feasible=bool(record["feasible"]),
            reason=(str(record["reason"])
                    if record.get("reason") is not None else None),
            cost=(CostTerms.from_record(cost)
                  if isinstance(cost, Mapping) else None),
            score=(float(record["score"])
                   if record.get("score") is not None else None),
            chosen=bool(record.get("chosen", False)))


@dataclass(frozen=True)
class PlacementExplanation:
    """The complete decision record for one offered VM."""

    vm_id: int
    algorithm: str
    decision: str  # "placed" | "rejected"
    server_id: int | None
    delay: int
    candidates: tuple[CandidateVerdict, ...]

    @property
    def chosen(self) -> CandidateVerdict | None:
        for verdict in self.candidates:
            if verdict.chosen:
                return verdict
        return None

    @property
    def feasible_count(self) -> int:
        return sum(1 for v in self.candidates if v.feasible)

    def infeasible(self) -> tuple[CandidateVerdict, ...]:
        return tuple(v for v in self.candidates if not v.feasible)

    def to_record(self) -> dict[str, object]:
        return {"vm_id": self.vm_id, "algorithm": self.algorithm,
                "decision": self.decision, "server_id": self.server_id,
                "delay": self.delay,
                "candidates": [v.to_record() for v in self.candidates]}

    @classmethod
    def from_record(cls, record: Mapping[str, object]
                    ) -> "PlacementExplanation":
        server_id = record.get("server_id")
        return cls(
            vm_id=int(record["vm_id"]),
            algorithm=str(record.get("algorithm", "")),
            decision=str(record["decision"]),
            server_id=int(server_id) if server_id is not None else None,
            delay=int(record.get("delay", 0)),
            candidates=tuple(CandidateVerdict.from_record(v)
                             for v in record.get("candidates", ())))

    def with_delay(self, delay: int) -> "PlacementExplanation":
        return replace(self, delay=delay)

    def format(self) -> str:
        """Per-candidate detail: one line per evaluated server."""
        head = (f"vm {self.vm_id} -> {self.decision}"
                + (f" on server {self.server_id}"
                   if self.server_id is not None else "")
                + (f" (delayed {self.delay})" if self.delay else "")
                + f" [{self.algorithm}; {self.feasible_count}/"
                  f"{len(self.candidates)} feasible]")
        lines = [head]
        for v in self.candidates:
            mark = ">" if v.chosen else " "
            if v.feasible:
                score = f" score={v.score:.3f}" if v.score is not None \
                    else ""
                cost = ""
                if v.cost is not None:
                    cost = (f" run={v.cost.run:.1f}"
                            f" idle_gap={v.cost.idle_gap:.1f}"
                            f" wake={v.cost.wake:.1f}"
                            f" total={v.cost.total:.1f}")
                lines.append(f" {mark} server {v.server_id:>4} "
                             f"{v.server_type:<8} feasible{cost}{score}")
            else:
                lines.append(f" {mark} server {v.server_id:>4} "
                             f"{v.server_type:<8} infeasible: {v.reason}")
        return "\n".join(lines)


class ExplainRecorder:
    """Collects :class:`PlacementExplanation` objects during a run."""

    def __init__(self) -> None:
        self.explanations: list[PlacementExplanation] = []

    def record(self, explanation: PlacementExplanation) -> None:
        self.explanations.append(explanation)

    @property
    def last(self) -> PlacementExplanation | None:
        return self.explanations[-1] if self.explanations else None

    def for_vm(self, vm_id: int) -> list[PlacementExplanation]:
        return [e for e in self.explanations if e.vm_id == vm_id]

    def rejected(self) -> list[PlacementExplanation]:
        return [e for e in self.explanations if e.decision == "rejected"]

    def __len__(self) -> int:
        return len(self.explanations)

    def __iter__(self) -> Iterator[PlacementExplanation]:
        return iter(self.explanations)


def format_decision_table(explanations: Iterable[PlacementExplanation],
                          ) -> str:
    """One row per decision: the ``repro explain`` summary table."""
    rows: Sequence[PlacementExplanation] = list(explanations)
    header = (f"{'vm':>6}  {'decision':<8}  {'server':>6}  {'delay':>5}  "
              f"{'feasible':>8}  {'score':>10}  {'cost_total':>10}")
    lines = [header, "-" * len(header)]
    for e in rows:
        chosen = e.chosen
        score = (f"{chosen.score:.3f}"
                 if chosen is not None and chosen.score is not None
                 else "-")
        cost = (f"{chosen.cost.total:.1f}"
                if chosen is not None and chosen.cost is not None
                else "-")
        server = str(e.server_id) if e.server_id is not None else "-"
        lines.append(
            f"{e.vm_id:>6}  {e.decision:<8}  {server:>6}  {e.delay:>5}  "
            f"{e.feasible_count:>4}/{len(e.candidates):<3}  "
            f"{score:>10}  {cost:>10}")
    return "\n".join(lines)
