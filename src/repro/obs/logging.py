"""Structured JSON logging with levels, rate limiting and trace ids.

A :class:`JsonLogger` writes one JSON object per line — machine-first
logs that grep, ship and join on ``trace_id``::

    {"ts": 1723105800.123456, "level": "info", "event": "service.request",
     "op": "place", "trace_id": "9f3c2a1b8d4e5f60", "decision": "placed",
     "latency_ms": 0.412}

Design mirrors :mod:`repro.obs.tracer`: a process-global logger that
defaults to a no-op (:data:`NULL_LOGGER`), installed globally with
:func:`set_logger` or for a scope with :func:`use_logger`, and an
``enabled`` attribute to guard expensive payload construction in hot
paths. ``repro serve --log-json`` installs one over stderr.

Rate limiting is per event name: with ``max_per_second`` set, each
event name gets a token bucket (burst = one second's worth, minimum 1);
excess lines are dropped and *counted*, and the next line that passes
carries ``"suppressed": <n>`` so the drop is visible in the log stream
instead of silent.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Callable, Iterator

from repro.exceptions import ValidationError

#: Shared encoder — ``json.dumps`` with keyword options builds a fresh
#: ``JSONEncoder`` per call, which dominates the cost of a log line.
_ENCODER = json.JSONEncoder(separators=(",", ":"), default=str)

__all__ = ["LEVELS", "JsonLogger", "NullLogger", "NULL_LOGGER",
           "get_logger", "set_logger", "use_logger"]

#: Log levels, least to most severe.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class JsonLogger:
    """Thread-safe structured logger writing one JSON object per line.

    Parameters
    ----------
    stream:
        Text stream the JSON lines go to (ignored when ``sink`` is
        given). ``None`` with no sink buffers nothing — pass one or the
        other; the CLI passes ``sys.stderr``.
    level:
        Minimum severity emitted (default ``"info"``).
    max_per_second:
        Per-event-name rate limit; ``None`` disables limiting.
    sink:
        Alternative destination: a callable receiving each record dict
        (tests, in-memory capture). When set, ``stream`` is unused.
    clock / wall:
        Injectable monotonic clock (rate limiting) and wall clock
        (the ``ts`` field) for deterministic tests.
    """

    enabled = True

    def __init__(self, stream: IO[str] | None = None, *,
                 level: str = "info",
                 max_per_second: float | None = None,
                 sink: Callable[[dict], None] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Callable[[], float] = time.time) -> None:
        if level not in LEVELS:
            raise ValidationError(
                f"unknown log level {level!r}; expected one of "
                f"{sorted(LEVELS)}")
        if max_per_second is not None and max_per_second <= 0:
            raise ValidationError(
                f"max_per_second must be positive, got {max_per_second}")
        if stream is None and sink is None and type(self) is JsonLogger:
            raise ValidationError("JsonLogger needs a stream or a sink")
        self.level = level
        self._threshold = LEVELS[level]
        self._stream = stream
        self._sink = sink
        self._rate = max_per_second
        self._burst = max(1.0, max_per_second) \
            if max_per_second is not None else 0.0
        self._clock = clock
        self._wall = wall
        self._lock = threading.Lock()
        #: event name -> (tokens, last refill time)
        self._buckets: dict[str, tuple[float, float]] = {}
        #: event name -> lines dropped since the last emitted one
        self._suppressed: dict[str, int] = {}
        self.emitted = 0
        self.suppressed_total = 0

    def enabled_for(self, level: str) -> bool:
        """Whether ``level`` passes the severity threshold."""
        return LEVELS.get(level, 0) >= self._threshold

    def _admit(self, event: str) -> tuple[bool, int]:
        """Token-bucket admission; returns (admitted, suppressed_count)."""
        if self._rate is None:
            return True, 0
        now = self._clock()
        tokens, last = self._buckets.get(event, (self._burst, now))
        tokens = min(self._burst, tokens + (now - last) * self._rate)
        if tokens < 1.0:
            self._buckets[event] = (tokens, now)
            self._suppressed[event] = self._suppressed.get(event, 0) + 1
            self.suppressed_total += 1
            return False, 0
        self._buckets[event] = (tokens - 1.0, now)
        return True, self._suppressed.pop(event, 0)

    def log(self, level: str, event: str, **fields: object) -> None:
        """Emit one structured line (subject to level and rate limit)."""
        if level not in LEVELS:
            raise ValidationError(f"unknown log level {level!r}")
        if LEVELS[level] < self._threshold:
            return
        if self._rate is None and self._sink is None:
            # Unlimited stream logger — the serve hot path. Serialize
            # outside the lock; only the write itself is guarded.
            record = {"ts": round(self._wall(), 6),
                      "level": level, "event": event}
            record.update(fields)
            payload = _ENCODER.encode(record) + "\n"
            with self._lock:
                self.emitted += 1
                self._stream.write(payload)
                self._stream.flush()
            return
        with self._lock:
            admitted, suppressed = self._admit(event)
            if not admitted:
                return
            record = {"ts": round(self._wall(), 6),
                      "level": level, "event": event}
            record.update(fields)
            if suppressed:
                record["suppressed"] = suppressed
            self.emitted += 1
            if self._sink is not None:
                self._sink(record)
            else:
                self._stream.write(_ENCODER.encode(record) + "\n")
                self._stream.flush()

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


class NullLogger(JsonLogger):
    """A logger that drops everything; the process-global default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=lambda record: None)

    def enabled_for(self, level: str) -> bool:
        return False

    def log(self, level: str, event: str, **fields: object) -> None:
        pass


#: The shared no-op logger installed by default.
NULL_LOGGER = NullLogger()

_current: JsonLogger = NULL_LOGGER


def get_logger() -> JsonLogger:
    """The process-global logger (:data:`NULL_LOGGER` unless installed)."""
    return _current


def set_logger(logger: JsonLogger | None) -> JsonLogger:
    """Install ``logger`` globally (``None`` restores the no-op
    default); returns the previously installed logger."""
    global _current
    previous = _current
    _current = logger if logger is not None else NULL_LOGGER
    return previous


@contextmanager
def use_logger(logger: JsonLogger) -> Iterator[JsonLogger]:
    """Install ``logger`` for the duration of a ``with`` block."""
    previous = set_logger(logger)
    try:
        yield logger
    finally:
        set_logger(previous)
