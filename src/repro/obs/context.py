"""Trace-context propagation: one id from client to journal.

A :class:`TraceContext` is the pair of correlation ids every service
request carries:

* ``trace_id`` — names one logical operation end to end: a placement,
  a batch, a failure episode, a consolidation episode. The client mints
  it, the daemon echoes it on the response, stamps it on every span of
  the request's span tree, on the journal (group) entry, and on the
  structured log line — so one grep (or one Perfetto query) follows the
  operation across client → daemon → allocator → journal.
* ``request_id`` — names one wire request. Retries resend the *same*
  ``request_id`` (the ids are stamped once, before the first attempt),
  so an at-least-once duplicate is recognisable in the journal.

Requests without ids are stamped daemon-side, so server spans and
journal entries are always correlated; journal **replay reuses the
recorded ids verbatim and never re-generates them** — a restored
daemon's logs tell the same story as the original run.

Ids are lowercase hex (16 chars for traces, 8 for requests), minted
from :mod:`secrets` — no coordination, no clock.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ServiceError

__all__ = ["TraceContext", "new_trace_id", "new_request_id",
           "trace_context_of"]

#: Wire field names of the trace envelope.
TRACE_ID_FIELD = "trace_id"
REQUEST_ID_FIELD = "request_id"

#: Ids longer than this are rejected as malformed (a sanity bound, not
#: a format requirement — callers may bring their own id scheme).
MAX_ID_LENGTH = 128


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


def new_request_id() -> str:
    """A fresh 32-bit request id (8 lowercase hex chars)."""
    return secrets.token_hex(4)


@dataclass(frozen=True)
class TraceContext:
    """The ``trace_id``/``request_id`` pair of one request."""

    trace_id: str
    request_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh context (new trace id, new request id)."""
        return cls(trace_id=new_trace_id(), request_id=new_request_id())

    def child(self) -> "TraceContext":
        """The same trace, a fresh request id (one more wire request)."""
        return TraceContext(trace_id=self.trace_id,
                            request_id=new_request_id())

    def to_fields(self) -> dict[str, str]:
        """The wire/journal/log representation."""
        return {TRACE_ID_FIELD: self.trace_id,
                REQUEST_ID_FIELD: self.request_id}

    def stamp(self, message: dict) -> dict:
        """Stamp ``message`` in place (existing ids win); returns it."""
        message.setdefault(TRACE_ID_FIELD, self.trace_id)
        message.setdefault(REQUEST_ID_FIELD, self.request_id)
        return message


def _validated_id(message: Mapping[str, object], field: str) -> str | None:
    value = message.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value.strip() \
            or len(value) > MAX_ID_LENGTH or "\n" in value:
        raise ServiceError(
            f"request field {field!r} must be a non-empty string of at "
            f"most {MAX_ID_LENGTH} chars, got {value!r}")
    return value


def trace_context_of(message: Mapping[str, object]) -> TraceContext:
    """The trace context of one request, minting what is missing.

    A request carrying ``trace_id`` (and optionally ``request_id``)
    keeps its ids; anything absent is minted here so every request —
    even from an id-less v1 client — is correlated daemon-side.

    Raises
    ------
    ServiceError
        When a present id is not a sane non-empty string.
    """
    trace_id = _validated_id(message, TRACE_ID_FIELD)
    request_id = _validated_id(message, REQUEST_ID_FIELD)
    return TraceContext(
        trace_id=trace_id if trace_id is not None else new_trace_id(),
        request_id=request_id if request_id is not None
        else new_request_id())
