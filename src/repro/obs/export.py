"""Exporters for recorded trace events.

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (an object with a ``traceEvents`` array),
  loadable in ``chrome://tracing`` and Perfetto. Wall-clock events land
  on pid 1 ("repro"); simulated-time counter series (fleet power etc.)
  land on pid 2 ("simulated time") so the viewers give them their own
  track. Timestamps are microseconds, emitted in non-decreasing order.
* :func:`write_jsonl` / :func:`read_jsonl` — a line-per-event structured
  log that round-trips :class:`~repro.obs.tracer.TraceEvent` exactly.
* :func:`summarize_chrome_trace` — the human-readable per-span digest
  behind ``repro trace <trace.json>``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.exceptions import ValidationError
from repro.obs.tracer import COUNTER, INSTANT, SPAN, TraceEvent

__all__ = ["to_chrome_trace", "write_chrome_trace", "write_jsonl",
           "read_jsonl", "load_chrome_trace", "summarize_chrome_trace"]

#: pid of wall-clock events in the Chrome trace.
WALL_PID = 1
#: pid of simulated-time series in the Chrome trace.
SIM_PID = 2


def _metadata(pid: int, label: str) -> dict[str, object]:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label}}


def to_chrome_trace(events: Iterable[TraceEvent], *,
                    process_name: str = "repro") -> dict[str, object]:
    """The events as a Chrome ``trace_event`` JSON document.

    Events are sorted by timestamp, so ``ts`` is non-decreasing within
    every (pid, tid) track — what Perfetto's importer expects.
    """
    ordered = sorted(events, key=lambda e: (e.clock != "wall", e.ts_ns))
    trace_events: list[dict[str, object]] = [
        _metadata(WALL_PID, process_name),
    ]
    if any(e.clock != "wall" for e in ordered):
        trace_events.append(_metadata(SIM_PID, "simulated time"))
    for event in ordered:
        pid = WALL_PID if event.clock == "wall" else SIM_PID
        ts_us = event.ts_ns / 1000.0
        if event.kind == SPAN:
            trace_events.append({
                "name": event.name, "ph": "X", "ts": ts_us,
                "dur": event.dur_ns / 1000.0, "pid": pid,
                "tid": event.tid, "args": dict(event.args)})
        elif event.kind == INSTANT:
            trace_events.append({
                "name": event.name, "ph": "i", "s": "t", "ts": ts_us,
                "pid": pid, "tid": event.tid, "args": dict(event.args)})
        elif event.kind == COUNTER:
            trace_events.append({
                "name": event.name, "ph": "C", "ts": ts_us, "pid": pid,
                "tid": event.tid, "args": dict(event.args)})
        else:
            raise ValidationError(f"unknown event kind {event.kind!r}")
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str | Path, *,
                       process_name: str = "repro") -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    document = to_chrome_trace(events, process_name=process_name)
    Path(path).write_text(json.dumps(document))
    return len(document["traceEvents"])


def load_chrome_trace(path: str | Path) -> dict[str, object]:
    """Load and validate the envelope of a Chrome trace JSON file.

    Raises :class:`ValidationError` with a clean, actionable message for
    every malformed input: a missing or unreadable file, an empty file
    (e.g. the daemon died before its trace flush), or a torn final line
    (killed mid-write).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValidationError(f"{path}: cannot read trace file: "
                              f"{exc.strerror or exc}") from exc
    if not text.strip():
        raise ValidationError(
            f"{path}: empty trace file (no events were written — the "
            f"process may have exited before its trace flush)")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        torn = exc.pos >= len(text.rstrip()) \
            or "Unterminated string" in exc.msg
        if torn:
            raise ValidationError(
                f"{path}: truncated trace file (torn final line — the "
                f"writer was likely killed mid-write): {exc.msg}"
            ) from exc
        raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(document, list):  # the bare-array variant is legal
        document = {"traceEvents": document}
    if not isinstance(document, dict) or \
            not isinstance(document.get("traceEvents"), list):
        raise ValidationError(
            f"{path}: not a Chrome trace (no traceEvents array)")
    return document


def summarize_chrome_trace(document: Mapping[str, object]) -> str:
    """A per-name digest of a Chrome trace: counts and wall time."""
    spans: dict[str, list[float]] = defaultdict(list)
    instants: dict[str, int] = defaultdict(int)
    counters: dict[str, int] = defaultdict(int)
    for event in document["traceEvents"]:
        if not isinstance(event, Mapping):
            continue
        ph = event.get("ph")
        name = str(event.get("name", "?"))
        if ph == "X":
            spans[name].append(float(event.get("dur", 0.0)))
        elif ph in ("B", "E"):
            spans[name].append(0.0)
        elif ph == "i" or ph == "I":
            instants[name] += 1
        elif ph == "C":
            counters[name] += 1
    lines = []
    if spans:
        header = (f"{'span':<28} {'count':>7} {'total_ms':>10} "
                  f"{'mean_ms':>9} {'max_ms':>9}")
        lines += [header, "-" * len(header)]
        for name in sorted(spans, key=lambda n: -sum(spans[n])):
            durs = spans[name]
            total = sum(durs) / 1000.0
            lines.append(f"{name:<28} {len(durs):>7} {total:>10.3f} "
                         f"{total / len(durs):>9.4f} "
                         f"{max(durs) / 1000.0:>9.3f}")
    for label, table in (("instant", instants), ("counter", counters)):
        for name in sorted(table):
            lines.append(f"{label} {name!r}: {table[name]} events")
    if not lines:
        lines.append("empty trace")
    return "\n".join(lines)


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Append-free structured event log: one JSON object per line."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_record(),
                                    separators=(",", ":")) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[TraceEvent]:
    """Stream the events back from a :func:`write_jsonl` log."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: malformed event line: {exc}"
                ) from exc
            yield TraceEvent.from_record(record)
