"""Spans, events and counters: the tracing core of :mod:`repro.obs`.

A :class:`Tracer` records three kinds of :class:`TraceEvent`:

* **spans** — named, nested durations (``with tracer.span("allocate")``)
  stamped with monotonic nanosecond timestamps;
* **instants** — point events with structured attributes;
* **counters** — named numeric series (e.g. fleet power per tick), either
  on the wall clock or on an explicit simulated-time axis.

The process-global tracer defaults to :data:`NULL_TRACER`, whose every
operation is a no-op returning a shared singleton span — instrumentation
left in hot paths costs a few attribute lookups when tracing is off.
Check ``tracer.enabled`` before building expensive attribute payloads;
the span/instant/counter calls themselves are always safe to make.

Enable tracing either globally (:func:`set_tracer`) or for a scope
(:func:`use_tracer`)::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        simulate_online(vms, cluster, allocator)
    tracer.events  # -> spans of allocate / replay, fleet counters, ...

Recorded events export to Chrome ``trace_event`` JSON or JSONL via
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = ["TraceEvent", "Span", "Tracer", "NullTracer", "NULL_TRACER",
           "get_tracer", "set_tracer", "use_tracer"]

#: Event kinds a tracer records.
SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"


@dataclass
class TraceEvent:
    """One recorded event on a tracer's timeline.

    ``ts_ns`` is nanoseconds on the event's clock: the process-monotonic
    clock for ``clock="wall"`` events, or simulated time (one tick =
    1000 ns, so one tick renders as 1 µs in trace viewers) for
    ``clock="sim"`` series such as the fleet-power counters.
    """

    kind: str
    name: str
    ts_ns: int
    dur_ns: int = 0
    tid: int = 0
    clock: str = "wall"
    args: dict = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """A JSON-safe record (the JSONL event-log line)."""
        return {"kind": self.kind, "name": self.name, "ts_ns": self.ts_ns,
                "dur_ns": self.dur_ns, "tid": self.tid, "clock": self.clock,
                "args": dict(self.args)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceEvent":
        return cls(kind=str(record["kind"]), name=str(record["name"]),
                   ts_ns=int(record["ts_ns"]),
                   dur_ns=int(record.get("dur_ns", 0)),
                   tid=int(record.get("tid", 0)),
                   clock=str(record.get("clock", "wall")),
                   args=dict(record.get("args", {})))


class Span:
    """An open duration; records one ``span`` event when it closes."""

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_tid")

    def __init__(self, tracer: "Tracer", name: str,
                 args: dict | None = None) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args if args is not None else {}
        self._start_ns = 0
        self._tid = 0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.args.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event while this span is open."""
        self._tracer.instant(name, **attrs)

    def __enter__(self) -> "Span":
        self._tid = threading.get_ident()
        self._start_ns = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        end = tracer._clock()
        # Raw tuple, no lock: list.append is atomic under the GIL and
        # TraceEvent construction is deferred until somebody reads the
        # timeline — this runs once per span on the request hot path.
        tracer._raw.append((SPAN, self.name, self._start_ns,
                            end - self._start_ns, self._tid, "wall",
                            self.args))


class Tracer:
    """Records spans, instants and counters on a monotonic clock.

    Thread-safe: events from concurrent request handlers land on one
    shared timeline, each stamped with its thread id.
    """

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns
                 ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        # Hot-path buffer of raw (kind, name, ts_ns, dur_ns, tid,
        # clock, args) tuples; materialized into TraceEvents lazily by
        # the ``events`` property. Appends are lock-free (GIL-atomic).
        self._raw: list[tuple] = []
        self._events: list[TraceEvent] = []
        self._materialized = 0

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded timeline as :class:`TraceEvent` objects."""
        raw = self._raw
        n = len(raw)
        if self._materialized < n:
            with self._lock:
                events = self._events
                while self._materialized < n:
                    kind, name, ts_ns, dur_ns, tid, clock, args = \
                        raw[self._materialized]
                    events.append(TraceEvent(
                        kind=kind, name=name, ts_ns=ts_ns,
                        dur_ns=dur_ns, tid=tid, clock=clock, args=args))
                    self._materialized += 1
        return self._events

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """An open span; use as a context manager."""
        return Span(self, name, attrs if attrs else None)

    def instant(self, name: str, **attrs: object) -> None:
        """Record a point event."""
        self._raw.append((INSTANT, name, self._clock(), 0,
                          threading.get_ident(), "wall", attrs))

    def counter(self, name: str, *, ts_ns: int | None = None,
                clock: str = "wall", **values: float) -> None:
        """Record a counter sample (one numeric series per key).

        ``ts_ns``/``clock`` place the sample on an explicit timeline —
        simulation telemetry replays its per-tick series with
        ``clock="sim"`` so trace viewers show it as its own track.
        """
        self._raw.append((
            COUNTER, name,
            self._clock() if ts_ns is None else ts_ns, 0,
            threading.get_ident() if clock == "wall" else 0,
            clock, values))

    # -- introspection -----------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._raw.clear()
            self._events.clear()
            self._materialized = 0

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All span events, optionally filtered by name."""
        return [e for e in self.events
                if e.kind == SPAN and (name is None or e.name == name)]

    def __len__(self) -> int:
        return len(self._raw)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing; the process-global default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, **attrs: object) -> None:
        pass

    def counter(self, name: str, *, ts_ns: int | None = None,
                clock: str = "wall", **values: float) -> None:
        pass


#: The shared no-op tracer installed by default.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (:data:`NULL_TRACER` unless installed)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the no-op default);
    returns the previously installed tracer."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
