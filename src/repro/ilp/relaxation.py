"""LP relaxation of the allocation ILP — a fast lower bound.

Dropping the integrality of ``x`` and ``y`` yields a linear program whose
optimum lower-bounds the true minimum energy. The bound is useful on
instances too large for the exact solver: any algorithm's cost can be
compared against it to bound the optimality gap from below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.exceptions import SolverError
from repro.ilp.formulation import build_problem
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["RelaxationResult", "solve_relaxation"]


@dataclass(frozen=True)
class RelaxationResult:
    """Outcome of the LP relaxation."""

    lower_bound: float
    status: str

    def gap_of(self, cost: float) -> float:
        """Relative gap of a concrete cost above this lower bound."""
        if self.lower_bound <= 0:
            return float("inf")
        return (cost - self.lower_bound) / self.lower_bound


def solve_relaxation(vms: Sequence[VM], cluster: Cluster) -> RelaxationResult:
    """Solve the LP relaxation; returns the lower bound on total energy."""
    problem = build_problem(vms, cluster)
    result = optimize.milp(
        c=problem.objective,
        constraints=optimize.LinearConstraint(
            problem.constraints_matrix, problem.lower, problem.upper),
        bounds=optimize.Bounds(problem.var_lower, problem.var_upper),
        integrality=np.zeros_like(problem.integrality),
    )
    if result.x is None:
        raise SolverError(
            f"LP relaxation failed (status {result.status}): "
            f"{result.message}")
    return RelaxationResult(lower_bound=float(result.fun),
                            status="optimal" if result.status == 0
                            else "feasible")
