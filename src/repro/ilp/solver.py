"""Solving the Eq. 8-14 ILP with HiGHS (via :func:`scipy.optimize.milp`).

The exact solver is tractable only for small instances (tens of VMs, a
handful of servers, horizons of a few tens of time units) but provides the
ground truth for optimality-gap benchmarks: how far are the paper's
heuristic and the FFPS baseline from the true optimum?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import optimize

from repro.exceptions import SolverError
from repro.ilp.formulation import ILPProblem, build_problem
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["ILPResult", "solve_ilp", "solve_problem"]


@dataclass(frozen=True)
class ILPResult:
    """Outcome of an exact solve."""

    allocation: Allocation
    objective: float
    mip_gap: float
    status: str

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_problem(problem: ILPProblem, *,
                  time_limit: float | None = None,
                  mip_rel_gap: float = 0.0) -> ILPResult:
    """Run HiGHS on a materialised :class:`ILPProblem`.

    Raises :class:`SolverError` when the solver reports anything other
    than success (infeasible model, time limit without incumbent, ...).
    """
    options: dict[str, object] = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = optimize.milp(
        c=problem.objective,
        constraints=optimize.LinearConstraint(
            problem.constraints_matrix, problem.lower, problem.upper),
        bounds=optimize.Bounds(problem.var_lower, problem.var_upper),
        integrality=problem.integrality,
        options=options,
    )
    if result.x is None:
        raise SolverError(
            f"ILP solve failed (status {result.status}): {result.message}")
    placements: dict[VM, int] = {}
    for j, vm in enumerate(problem.vms):
        chosen = [i for i in range(problem.n_servers)
                  if result.x[problem.x_index(i, j)] > 0.5]
        if len(chosen) != 1:
            raise SolverError(
                f"solution places {vm} on {len(chosen)} servers")
        placements[vm] = chosen[0]
    allocation = Allocation(problem.cluster, placements)
    allocation.validate(vms=problem.vms)
    status = "optimal" if result.status == 0 else "feasible"
    return ILPResult(
        allocation=allocation,
        objective=float(result.fun),
        mip_gap=float(getattr(result, "mip_gap", 0.0) or 0.0),
        status=status,
    )


def solve_ilp(vms: Sequence[VM], cluster: Cluster, *,
              time_limit: float | None = None,
              mip_rel_gap: float = 0.0,
              constraints=None) -> ILPResult:
    """Build and solve the exact formulation for ``vms`` on ``cluster``.

    ``constraints`` (a :class:`~repro.model.constraints
    .PlacementConstraints`) adds affinity / anti-affinity groups.
    """
    problem = build_problem(vms, cluster, constraints=constraints)
    return solve_problem(problem, time_limit=time_limit,
                         mip_rel_gap=mip_rel_gap)
