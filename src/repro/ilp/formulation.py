"""Boolean ILP formulation of the allocation problem (paper Eqs. 8-14).

Variables (all booleans in the paper):

* ``x[i, j]`` — VM ``j`` placed on server ``i``;
* ``y[i, t]`` — server ``i`` active during time unit ``t`` (``t = 1..T``);
* ``z[i, t]`` — linearisation of the transition term
  ``(y[i,t] - y[i,t-1])+``: minimising ``alpha_i * z`` subject to
  ``z >= y_t - y_{t-1}`` and ``z >= 0`` reproduces the positive part
  exactly, and ``z`` may stay continuous because the objective presses it
  down onto the maximum of the two lower bounds.

Constraints:

* assignment (Eq. 11): ``sum_i x[i,j] = 1``;
* capacity (Eqs. 9-10): for every server and time unit,
  ``sum_{j active at t} R_j x[i,j] <= C_i y[i,t]`` for CPU and memory;
* transitions: ``y[i,t] - y[i,t-1] - z[i,t] <= 0`` with ``y[i,0] = 0``.

The paper's indicator constraint (Eq. 12, ``x_ij <= y_it``) is implied by
the capacity constraints because every VM demand is strictly positive; it
can still be emitted explicitly for verification via
``include_indicator_constraints=True``.

Pairs ``(i, j)`` where the VM can never fit on the server are fixed to
zero through variable bounds rather than constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.energy.power import run_energy
from repro.model.phases import demand_profile
from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.vm import VM

__all__ = ["ILPProblem", "build_problem"]


@dataclass(frozen=True)
class ILPProblem:
    """A fully materialised ILP instance ready for the HiGHS solver."""

    vms: tuple[VM, ...]
    cluster: Cluster
    horizon: int
    objective: np.ndarray
    constraints_matrix: sparse.csr_matrix
    lower: np.ndarray
    upper: np.ndarray
    var_lower: np.ndarray
    var_upper: np.ndarray
    integrality: np.ndarray

    @property
    def n_servers(self) -> int:
        return len(self.cluster)

    @property
    def n_vms(self) -> int:
        return len(self.vms)

    def x_index(self, server_id: int, vm_index: int) -> int:
        """Flat variable index of ``x[server_id, vm_index]``."""
        return server_id * self.n_vms + vm_index

    def y_index(self, server_id: int, t: int) -> int:
        """Flat variable index of ``y[server_id, t]`` (``t`` is 1-based)."""
        return (self.n_servers * self.n_vms
                + server_id * self.horizon + (t - 1))

    def z_index(self, server_id: int, t: int) -> int:
        """Flat variable index of ``z[server_id, t]`` (``t`` is 1-based)."""
        return (self.n_servers * self.n_vms
                + self.n_servers * self.horizon
                + server_id * self.horizon + (t - 1))

    @property
    def n_variables(self) -> int:
        return self.n_servers * self.n_vms + 2 * self.n_servers * self.horizon


def build_problem(vms: Sequence[VM], cluster: Cluster, *,
                  include_indicator_constraints: bool = False,
                  committed_cpu: np.ndarray | None = None,
                  committed_mem: np.ndarray | None = None,
                  initially_active: frozenset[int] | set[int] = frozenset(),
                  constraints: PlacementConstraints | None = None,
                  ) -> ILPProblem:
    """Materialise the Eq. 8-14 ILP for the given instance.

    The time horizon is ``T = max(vm.end)``; VM intervals must lie within
    ``[1, T]`` (the paper indexes time from 1).

    The optional parameters support the receding-horizon solver, which
    solves the problem window by window:

    * ``committed_cpu`` / ``committed_mem`` — arrays of shape
      ``(n_servers, T + 1)`` giving load already committed by earlier
      windows at each (server, time). Capacity constraints shrink
      accordingly, and any (server, time) with committed load has its
      ``y`` variable fixed to 1 (the server is already obliged to be
      active there).
    * ``initially_active`` — server ids active at ``t = 0`` (the end of
      the previous window), so their first activation in this window is
      not charged a spurious wake-up (``y_{i,0} = 1`` instead of 0).
    """
    vms = tuple(sorted(vms, key=lambda v: (v.start, v.end, v.vm_id)))
    if not vms:
        raise ValidationError("cannot build an ILP without VMs")
    if min(vm.start for vm in vms) < 1:
        raise ValidationError("VM start times must be >= 1 for the ILP")
    n = len(cluster)
    m = len(vms)
    horizon = max(vm.end for vm in vms)
    if committed_cpu is not None and committed_cpu.shape[0] != n:
        raise ValidationError(
            f"committed_cpu has {committed_cpu.shape[0]} rows for "
            f"{n} servers")
    if (committed_cpu is None) != (committed_mem is None):
        raise ValidationError(
            "committed_cpu and committed_mem must be given together")
    n_x = n * m
    n_y = n * horizon
    n_vars = n_x + 2 * n_y

    # --- objective -------------------------------------------------------
    objective = np.zeros(n_vars)
    var_upper = np.ones(n_vars)
    for i, server in enumerate(cluster):
        for j, vm in enumerate(vms):
            idx = i * m + j
            if server.fits(vm.cpu, vm.memory):
                objective[idx] = run_energy(server.spec, vm)
            else:
                var_upper[idx] = 0.0  # x fixed to zero: can never fit
        for t in range(1, horizon + 1):
            objective[n_x + i * horizon + (t - 1)] = server.p_idle
            objective[n_x + n_y + i * horizon + (t - 1)] = \
                server.transition_cost
    var_lower = np.zeros(n_vars)

    # x and y are binary; z may remain continuous (see module docstring).
    integrality = np.zeros(n_vars)
    integrality[:n_x + n_y] = 1

    # --- constraints -------------------------------------------------------
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # assignment: sum_i x[i,j] = 1
    for j in range(m):
        for i in range(n):
            add_entry(row, i * m + j, 1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1

    # active VMs per time unit with their (possibly phased) demand R_jt
    active_at: list[list[tuple[int, float, float]]] = \
        [[] for _ in range(horizon + 1)]
    for j, vm in enumerate(vms):
        for piece, cpu, memory in demand_profile(vm):
            for t in range(piece.start, piece.end + 1):
                active_at[t].append((j, cpu, memory))

    # capacity: sum_j R_j x[i,j] - (C_i - committed) y[i,t] <= 0
    for i, server in enumerate(cluster):
        for t in range(1, horizon + 1):
            used_cpu = float(committed_cpu[i, t]) \
                if committed_cpu is not None and t < committed_cpu.shape[1] \
                else 0.0
            used_mem = float(committed_mem[i, t]) \
                if committed_mem is not None and t < committed_mem.shape[1] \
                else 0.0
            y_col = n_x + i * horizon + (t - 1)
            if used_cpu > 0 or used_mem > 0:
                # Earlier windows already oblige this server to be active.
                var_lower[y_col] = 1.0
            demands = active_at[t]
            if not demands:
                continue
            for j, cpu, _memory in demands:
                add_entry(row, i * m + j, cpu)
            add_entry(row, y_col, -(server.cpu_capacity - used_cpu))
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1
            for j, _cpu, memory in demands:
                add_entry(row, i * m + j, memory)
            add_entry(row, y_col, -(server.memory_capacity - used_mem))
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1

    # transitions: y[i,t] - y[i,t-1] - z[i,t] <= 0, with y[i,0] = 0
    # (or 1 for servers carried over active from a previous window)
    for i in range(n):
        for t in range(1, horizon + 1):
            y_col = n_x + i * horizon + (t - 1)
            z_col = n_x + n_y + i * horizon + (t - 1)
            add_entry(row, y_col, 1.0)
            if t > 1:
                add_entry(row, y_col - 1, -1.0)
            add_entry(row, z_col, -1.0)
            lower.append(-np.inf)
            upper.append(1.0 if t == 1 and i in initially_active else 0.0)
            row += 1

    # placement constraints (affinity / anti-affinity groups)
    if constraints is not None and not constraints.is_trivial:
        index_of = {vm.vm_id: j for j, vm in enumerate(vms)}
        for group in (constraints.colocate + constraints.separate):
            missing = [v for v in group if v not in index_of]
            if missing:
                raise ValidationError(
                    f"constraint group references unknown VM ids "
                    f"{sorted(missing)}")
        # affinity: x[i, a] == x[i, b] for each class member pair
        for cls_ in constraints.affinity_classes():
            members = sorted(cls_)
            rep = index_of[members[0]]
            for other in members[1:]:
                j = index_of[other]
                for i in range(n):
                    add_entry(row, i * m + rep, 1.0)
                    add_entry(row, i * m + j, -1.0)
                    lower.append(0.0)
                    upper.append(0.0)
                    row += 1
        # anti-affinity: at most one group member per server
        for group in constraints.separate:
            indices = [index_of[v] for v in sorted(group)]
            for i in range(n):
                for j in indices:
                    add_entry(row, i * m + j, 1.0)
                lower.append(-np.inf)
                upper.append(1.0)
                row += 1

    # optional explicit indicator constraints (Eq. 12): x[i,j] <= y[i,t]
    if include_indicator_constraints:
        for i in range(n):
            for j, vm in enumerate(vms):
                for t in range(vm.start, vm.end + 1):
                    add_entry(row, i * m + j, 1.0)
                    add_entry(row, n_x + i * horizon + (t - 1), -1.0)
                    lower.append(-np.inf)
                    upper.append(0.0)
                    row += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, n_vars))
    return ILPProblem(
        vms=vms,
        cluster=cluster,
        horizon=horizon,
        objective=objective,
        constraints_matrix=matrix,
        lower=np.array(lower),
        upper=np.array(upper),
        var_lower=var_lower,
        var_upper=var_upper,
        integrality=integrality,
    )
