"""Exact solver: the paper's boolean ILP (Eqs. 8-14) and its LP relaxation."""

from repro.ilp.formulation import ILPProblem, build_problem
from repro.ilp.receding import RecedingHorizonResult, RecedingHorizonSolver
from repro.ilp.relaxation import RelaxationResult, solve_relaxation
from repro.ilp.solver import ILPResult, solve_ilp, solve_problem

__all__ = [
    "ILPProblem",
    "build_problem",
    "RecedingHorizonResult",
    "RecedingHorizonSolver",
    "RelaxationResult",
    "solve_relaxation",
    "ILPResult",
    "solve_ilp",
    "solve_problem",
]
