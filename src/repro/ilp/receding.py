"""Receding-horizon exact solving — near-optimal plans at medium scale.

The full Eq. 8-14 ILP is exact but explodes with the time horizon. The
receding-horizon solver trades a little optimality for tractability: VMs
are batched by start-time windows, each batch is solved *exactly* (with
HiGHS) against the capacity already committed by earlier batches, and the
windows are stitched into one plan. Within a window the model knows which
servers the previous window left active (no spurious wake-ups are
charged) and how much capacity is already spoken for at every time unit.

With a window at least as long as the whole horizon this reduces to the
exact solver; with small windows it approaches the greedy heuristic's
speed while typically landing between the two in energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.energy.cost import allocation_cost
from repro.exceptions import ValidationError
from repro.ilp.formulation import build_problem
from repro.ilp.solver import solve_problem
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["RecedingHorizonResult", "RecedingHorizonSolver"]


@dataclass(frozen=True)
class RecedingHorizonResult:
    """A stitched plan plus how many windows produced it."""

    allocation: Allocation
    windows: int
    total_energy: float


class RecedingHorizonSolver:
    """Window-by-window exact solving (see module docstring).

    Parameters
    ----------
    window_length:
        Width of each start-time window in time units.
    time_limit_per_window:
        HiGHS time limit per window solve, seconds.
    mip_rel_gap:
        Acceptable relative MIP gap per window (0 = prove optimality).
    """

    def __init__(self, window_length: int = 30,
                 time_limit_per_window: float | None = 30.0,
                 mip_rel_gap: float = 0.0) -> None:
        if window_length <= 0:
            raise ValidationError(
                f"window_length must be positive, got {window_length}")
        self._window = window_length
        self._time_limit = time_limit_per_window
        self._gap = mip_rel_gap

    def allocate(self, vms: Iterable[VM],
                 cluster: Cluster) -> RecedingHorizonResult:
        """Solve ``vms`` on ``cluster`` window by window."""
        ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
        if not ordered:
            raise ValidationError("cannot solve an empty workload")
        horizon = max(vm.end for vm in ordered)
        n = len(cluster)
        committed_cpu = np.zeros((n, horizon + 2))
        committed_mem = np.zeros((n, horizon + 2))
        placements: dict[VM, int] = {}
        windows = 0
        index = 0
        window_start = ordered[0].start
        while index < len(ordered):
            window_end = window_start + self._window - 1
            batch = []
            while index < len(ordered) and \
                    ordered[index].start <= window_end:
                batch.append(ordered[index])
                index += 1
            if not batch:
                window_start = ordered[index].start
                continue
            active = frozenset(
                i for i in range(n)
                if committed_cpu[i, min(window_start, horizon + 1)] > 0)
            problem = build_problem(
                batch, cluster,
                committed_cpu=committed_cpu,
                committed_mem=committed_mem,
                initially_active=active)
            result = solve_problem(problem, time_limit=self._time_limit,
                                   mip_rel_gap=self._gap)
            for vm in batch:
                server_id = result.allocation.server_of(vm)
                placements[vm] = server_id
                committed_cpu[server_id, vm.start:vm.end + 1] += vm.cpu
                committed_mem[server_id, vm.start:vm.end + 1] += vm.memory
            windows += 1
            window_start = window_end + 1
        allocation = Allocation(cluster, placements)
        allocation.validate(vms=ordered)
        return RecedingHorizonResult(
            allocation=allocation,
            windows=windows,
            total_energy=allocation_cost(allocation).total)
