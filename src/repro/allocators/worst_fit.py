"""Worst fit: loosest residual capacity during the VM's interval.

The load-balancing mirror of best fit — each VM goes to the feasible server
with the *most* normalized spare capacity left at the interval's peak. It
spreads load across many servers, which is typically the worst strategy for
energy (many half-idle active servers), so it anchors the high end of the
algorithm comparison.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.best_fit import _residual, _residuals, residual_score
from repro.allocators.state import ServerState
from repro.model.vm import VM
from repro.placement.feasibility import Feasibility
from repro.placement.kernels import FeasibilityBatch

__all__ = ["WorstFit"]


class WorstFit(Allocator):
    """Pick the feasible server with the most remaining capacity."""

    name = "worst-fit"

    #: Same fold as best fit, on the negated residual (lower = looser).
    scan_mode = "score"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: negated residual (lower = more spare)."""
        return -residual_score(state, vm)

    def shard_key(self, vm: VM, state: ServerState,
                  verdict: Feasibility) -> float:
        return -_residual(state.server.spec, verdict, vm)

    def shard_keys(self, vm: VM, batch: FeasibilityBatch) -> np.ndarray:
        return -_residuals(batch, vm)

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        batch = self._probe_candidates(vm, states)
        if batch is not None:
            rows = self._admissible_rows(vm, batch)
            if not rows.size:
                return None
            # argmax returns the first maximum — the scalar strict->
            # walk's first-wins tie-break.
            pick = rows[int(np.argmax(_residuals(batch, vm)[rows]))]
            return batch.state_at(int(pick))
        best: ServerState | None = None
        best_score = -math.inf
        for state in self._candidates(vm, states):
            verdict = self._examine(vm, state)
            if verdict is None:
                continue
            score = _residual(state.server.spec, verdict, vm)
            if score > best_score:
                best = state
                best_score = score
        return best

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return max(feasible, key=lambda st: residual_score(st, vm))
