"""Random fit: a uniformly random feasible server per VM.

The weakest sensible baseline — it satisfies the constraints but exercises
no preference at all, giving a floor against which even FFPS's implicit
consolidation (reusing early servers in its fixed order) is visible.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["RandomFit"]


class RandomFit(Allocator):
    """Place each VM on a feasible server chosen uniformly at random."""

    name = "random-fit"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """No ranking: every feasible server is equally likely."""
        return None

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        index = int(self._rng.integers(len(feasible)))
        return feasible[index]
