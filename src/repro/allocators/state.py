"""Mutable per-server state used while an allocator builds a plan.

:class:`ServerState` tracks, for one server, the CPU and memory already
committed over time (behind a pluggable occupancy index, sparse by
default — see :mod:`repro.placement`), the merged busy segments, and the
running Eq.-17 energy cost. It supports the two queries every allocator
needs:

* :meth:`probe` — can this VM run here for its whole interval without
  exceeding capacity at any time unit (constraints 9-10), and if not, why?
  The verdict also carries the peak committed usage over the interval, so
  one probe serves feasibility checks, explain-traces, and bin-packing
  scores alike.
* :meth:`incremental_cost` — by how much would this server's energy rise if
  the VM were placed here (the paper's heuristic selection criterion)?

The incremental cost is computed *locally*: adding one interval only
perturbs the busy segments it overlaps or touches, so the delta is derived
from the affected neighbourhood rather than a full timeline recomputation.
A from-scratch recomputation is kept in the tests as the oracle.

The pre-probe ``fits`` / ``fit_reason`` / ``peak_usage`` trio has been
removed after its deprecation cycle; ``docs/api.md`` records the
replacements.
"""

from __future__ import annotations

import bisect
import weakref

from repro.energy.cost import SleepPolicy, gap_cost, server_cost
from repro.energy.power import run_energy
from repro.energy.segments import ServerTimeline
from repro.exceptions import CapacityError
from repro.model.intervals import TimeInterval, merge_intervals
from repro.model.phases import demand_profile
from repro.model.server import Server
from repro.model.vm import VM
from repro.obs.explain import CostTerms
from repro.placement.config import EngineConfig
from repro.placement.feasibility import Feasibility
from repro.placement.occupancy import DEFAULT_ENGINE, make_occupancy

__all__ = ["ServerState"]

#: Headroom tolerance for capacity comparisons (absorbs float accumulation).
_TOL = 1e-9


class ServerState:
    """Usage, busy segments, and running cost for one server."""

    def __init__(self, server: Server, *,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: EngineConfig | str = DEFAULT_ENGINE) -> None:
        self.server = server
        self.policy = policy
        # ServerState is internal plumbing, so both forms are accepted
        # silently here; the public constructors (allocators, the
        # service store) own the legacy-string deprecation.
        config = EngineConfig.coerce(engine, warn=False)
        self.engine_config = config
        #: which occupancy backend answers probes ("indexed" or "dense")
        self.engine = config.engine
        #: the active robustness config, or None for nominal probing
        self.robustness = config.active_robustness
        self.vms: list[VM] = []
        #: merged, sorted busy segments as parallel start/end lists
        self._busy_starts: list[int] = []
        self._busy_ends: list[int] = []
        self._occ = make_occupancy(config.engine, self.robustness)
        #: running Eq.-17 total (run + busy idle + gaps + initial wake)
        self.cost: float = 0.0
        #: weakly-held observers notified after every mutation (the
        #: fleet-probe kernel and the incremental candidate index).
        self._watchers: list[weakref.ref] = []

    # -- change notification -------------------------------------------------

    def add_watcher(self, watcher: object) -> None:
        """Register ``watcher`` for mutation notifications.

        Watchers implement ``server_state_changed(state)`` and are held
        weakly: a replaced index/kernel (fleet rebuilds re-run
        ``prepare``) is dropped on the next notification instead of
        leaking.
        """
        self._watchers.append(weakref.ref(watcher))

    def _notify(self) -> None:
        watchers = self._watchers
        if not watchers:
            return
        dead = False
        for ref in watchers:
            watcher = ref()
            if watcher is None:
                dead = True
            else:
                watcher.server_state_changed(self)
        if dead:
            self._watchers = [ref for ref in watchers
                              if ref() is not None]

    # -- capacity ----------------------------------------------------------

    def probe(self, vm: VM) -> Feasibility:
        """Feasibility verdict for ``vm`` on this server (Eqs. 9-10).

        Phase-aware: a :class:`~repro.model.phases.PhasedVM` is checked
        piece by piece against the committed usage. One pass yields the
        feasible flag, the failing constraint (``"cpu:capacity"``,
        ``"mem:capacity"``, ``"cpu:overlap@t"`` / ``"mem:overlap@t"``
        naming the first overloaded time unit), and the peak committed
        (cpu, mem) over the VM's interval with the matching headroom.

        With an active :class:`~repro.robust.config.RobustnessConfig`
        the verdict is Γ-robust: every overlapped segment is charged
        the nominal committed demand plus the Γ largest radii among
        the VMs overlapping it (the probed VM included), and the
        reported peaks/headroom reflect that robust reservation.
        """
        if self.robustness is not None:
            return self._probe_robust(vm)
        spec = self.server.spec
        if vm.cpu > spec.cpu_capacity:
            return Feasibility(False, "cpu:capacity", 0.0, 0.0,
                               spec.cpu_capacity, spec.memory_capacity)
        if vm.memory > spec.memory_capacity:
            return Feasibility(False, "mem:capacity", 0.0, 0.0,
                               spec.cpu_capacity, spec.memory_capacity)
        peak_cpu = peak_mem = 0.0
        for piece, cpu, memory in demand_profile(vm):
            reason, piece_cpu, piece_mem = self._occ.probe_piece(
                piece.start, piece.end, cpu, memory,
                spec.cpu_capacity, spec.memory_capacity, _TOL)
            if piece_cpu > peak_cpu:
                peak_cpu = piece_cpu
            if piece_mem > peak_mem:
                peak_mem = piece_mem
            if reason is not None:
                return Feasibility(False, reason, peak_cpu, peak_mem,
                                   spec.cpu_capacity - peak_cpu,
                                   spec.memory_capacity - peak_mem)
        return Feasibility(True, None, peak_cpu, peak_mem,
                           spec.cpu_capacity - peak_cpu,
                           spec.memory_capacity - peak_mem)

    def _probe_robust(self, vm: VM) -> Feasibility:
        """:meth:`probe` under the active Γ-robust constraint.

        The static admission check charges the VM its own radius (with
        Γ >= 1 a lone VM's radius is always in the worst-case set), and
        each demand piece goes through the robust skyline's
        ``probe_piece_robust`` — the same closed-form excess the fleet
        kernel evaluates on its mirrored accumulator arrays.
        """
        spec = self.server.spec
        if vm.cpu + vm.cpu_radius > spec.cpu_capacity:
            return Feasibility(False, "cpu:capacity", 0.0, 0.0,
                               spec.cpu_capacity, spec.memory_capacity)
        if vm.memory + vm.mem_radius > spec.memory_capacity:
            return Feasibility(False, "mem:capacity", 0.0, 0.0,
                               spec.cpu_capacity, spec.memory_capacity)
        peak_cpu = peak_mem = 0.0
        for piece, cpu, memory in demand_profile(vm):
            reason, piece_cpu, piece_mem = self._occ.probe_piece_robust(
                piece.start, piece.end, cpu, memory,
                vm.cpu_radius, vm.mem_radius,
                spec.cpu_capacity, spec.memory_capacity, _TOL)
            if piece_cpu > peak_cpu:
                peak_cpu = piece_cpu
            if piece_mem > peak_mem:
                peak_mem = piece_mem
            if reason is not None:
                return Feasibility(False, reason, peak_cpu, peak_mem,
                                   spec.cpu_capacity - peak_cpu,
                                   spec.memory_capacity - peak_mem)
        return Feasibility(True, None, peak_cpu, peak_mem,
                           spec.cpu_capacity - peak_cpu,
                           spec.memory_capacity - peak_mem)

    # -- busy-segment bookkeeping -------------------------------------------

    def _affected_range(self, iv: TimeInterval) -> tuple[int, int]:
        """Index range [lo, hi) of busy segments merging with ``iv``.

        A segment merges when it overlaps or is adjacent to ``iv``, i.e.
        when ``seg.end >= iv.start - 1`` and ``seg.start <= iv.end + 1``.
        """
        lo = bisect.bisect_left(self._busy_ends, iv.start - 1)
        hi = bisect.bisect_right(self._busy_starts, iv.end + 1)
        return lo, hi

    def _local_delta(self, iv: TimeInterval) -> float:
        """Eq.-17 cost increase of adding interval ``iv`` (no run cost)."""
        spec = self.server.spec
        lo, hi = self._affected_range(iv)
        if lo >= hi:
            # iv touches no existing segment: one new busy segment appears.
            delta = spec.p_idle * iv.length
            if not self._busy_starts:
                return delta + spec.transition_cost  # first wake-up
            # A surrounding gap (when interior) is replaced by up to two
            # smaller gaps. Extending the span outwards creates only one
            # new gap and moves — not duplicates — the initial wake-up.
            prev_end = self._busy_ends[lo - 1] if lo > 0 else None
            next_start = (self._busy_starts[lo]
                          if lo < len(self._busy_starts) else None)
            old_gap = _gap(prev_end, next_start)
            if old_gap is not None:
                delta -= gap_cost(spec, old_gap, self.policy)
            left_gap = _gap(prev_end, iv.start)
            if left_gap is not None:
                delta += gap_cost(spec, left_gap, self.policy)
            right_gap = _gap(iv.end, next_start)
            if right_gap is not None:
                delta += gap_cost(spec, right_gap, self.policy)
            return delta
        # iv merges segments [lo, hi) into one.
        merged_start = min(iv.start, self._busy_starts[lo])
        merged_end = max(iv.end, self._busy_ends[hi - 1])
        old_busy = sum(self._busy_ends[k] - self._busy_starts[k] + 1
                       for k in range(lo, hi))
        delta = spec.p_idle * ((merged_end - merged_start + 1) - old_busy)
        # Interior gaps between merged segments disappear.
        for k in range(lo, hi - 1):
            inner = TimeInterval(self._busy_ends[k] + 1,
                                 self._busy_starts[k + 1] - 1)
            delta -= gap_cost(spec, inner, self.policy)
        # Boundary gaps shrink (or vanish) as the merged segment extends.
        prev_end = self._busy_ends[lo - 1] if lo > 0 else None
        next_start = (self._busy_starts[hi]
                      if hi < len(self._busy_starts) else None)
        old_left = _gap(prev_end, self._busy_starts[lo])
        new_left = _gap(prev_end, merged_start)
        delta += _gap_delta(spec, old_left, new_left, self.policy)
        old_right = _gap(self._busy_ends[hi - 1], next_start)
        new_right = _gap(merged_end, next_start)
        delta += _gap_delta(spec, old_right, new_right, self.policy)
        return delta

    # -- queries -------------------------------------------------------------

    def idle_delta(self, interval: TimeInterval) -> float:
        """Eq.-17 delta of busying ``interval`` here, excluding run cost.

        The non-run share of :meth:`incremental_cost` (extra busy
        idle-power, gap-cost changes, wake-ups); exposed so fused
        selection loops can cache the run term per server type.
        """
        return self._local_delta(interval)

    def incremental_cost(self, vm: VM) -> float:
        """Energy increase if ``vm`` were placed on this server (Eq. 17).

        Includes the VM's run cost ``W_ij``, the extra busy idle-power, the
        change in idle-gap costs, and any additional wake-up transitions.
        """
        return run_energy(self.server.spec, vm) + \
            self._local_delta(vm.interval)

    def cost_terms(self, vm: VM) -> CostTerms:
        """The :meth:`incremental_cost` split into its explainable parts.

        ``wake`` is the transition energy ``alpha_i`` charged only when
        the server currently hosts nothing (a first wake-up); merges and
        extensions of existing busy segments move the wake-up rather
        than duplicate it, so their entire delta lands in ``idle_gap``.
        """
        wake = self.server.spec.transition_cost if not self._busy_starts \
            else 0.0
        delta = self._local_delta(vm.interval)
        return CostTerms(run=run_energy(self.server.spec, vm),
                         idle_gap=delta - wake, wake=wake)

    def incremental_cost_swapped(self, vm: VM, *, without: VM,
                                 plus: VM | None = None) -> float:
        """:meth:`incremental_cost` of ``vm`` if resident ``without``
        were replaced by ``plus`` — evaluated hypothetically.

        Returns exactly what ``remove(without)``, ``place(plus)``,
        ``incremental_cost(vm)`` followed by restoring would report,
        with none of the rebuilds and no mutation: the swapped busy
        timeline is merged on the side and the Eq.-17 delta read off
        it. The consolidation planner uses this to price "stay put"
        against a source shrunk to a migrating VM's head without
        touching the book.
        """
        try:
            drop = self.vms.index(without)
        except ValueError:
            raise CapacityError(
                f"{without} is not placed on {self.server}",
                server_id=self.server.server_id) from None
        intervals = [v.interval for i, v in enumerate(self.vms)
                     if i != drop]
        if plus is not None:
            intervals.append(plus.interval)
        merged = merge_intervals(intervals)
        saved = self._busy_starts, self._busy_ends
        self._busy_starts = [seg.start for seg in merged]
        self._busy_ends = [seg.end for seg in merged]
        try:
            return run_energy(self.server.spec, vm) + \
                self._local_delta(vm.interval)
        finally:
            self._busy_starts, self._busy_ends = saved

    # -- mutation --------------------------------------------------------------

    def place(self, vm: VM) -> float:
        """Commit ``vm`` to this server; returns the cost increase.

        Raises :class:`CapacityError` when the VM does not fit (callers are
        expected to have checked :meth:`probe`).
        """
        if not self.probe(vm):
            raise CapacityError(
                f"{vm} does not fit on {self.server}",
                server_id=self.server.server_id)
        return self.place_trusted(vm)

    def place_trusted(self, vm: VM) -> float:
        """:meth:`place` without the feasibility probe.

        For rebuilding a book from a known-good placement log (failure
        and consolidation rebuilds, planning replicas): every VM was
        probed when first admitted, so re-validating is pure overhead.
        The cost arithmetic is identical to :meth:`place`.
        """
        delta = self.incremental_cost(vm)
        for piece, cpu, memory in demand_profile(vm):
            self._occ.add(piece.start, piece.end, cpu, memory)
        if self.robustness is not None:
            # Radii are spec-level: constant over the whole interval
            # even when the per-piece demand varies by phase.
            self._occ.add_radius(vm.start, vm.end,
                                 vm.cpu_radius, vm.mem_radius)
        self._merge_in(vm.interval)
        self.vms.append(vm)
        self.cost += delta
        self._notify()
        return delta

    def remove(self, vm: VM) -> float:
        """Withdraw a previously-placed VM; returns the cost decrease.

        Used by migration/consolidation extensions. Busy segments and the
        running cost are rebuilt from the remaining VM set (an O(k log k)
        operation on this server only).
        """
        try:
            self.vms.remove(vm)
        except ValueError:
            raise CapacityError(
                f"{vm} is not placed on {self.server}",
                server_id=self.server.server_id) from None
        for piece, cpu, memory in demand_profile(vm):
            self._occ.subtract(piece.start, piece.end, cpu, memory)
        if self.robustness is not None:
            self._occ.subtract_radius(vm.start, vm.end,
                                      vm.cpu_radius, vm.mem_radius)
        old_cost = self.cost
        self._rebuild()
        self._notify()
        return old_cost - self.cost

    def retire(self, vm: VM, *, before: int | None = None) -> None:
        """Forget a *finished* VM without undoing its energy accounting.

        Unlike :meth:`remove` (a migration: the demand is withdrawn and the
        cost rebuilt), retirement acknowledges that the VM ran to
        completion: its energy stays in :attr:`cost` and its demand stays
        in effect, but the live ``vms`` list shrinks and — when ``before``
        is given — occupancy change points and busy segments strictly in
        the past are compacted away, so the daemon's memory tracks live
        load instead of elapsed time. Probes and cost deltas for intervals
        at or after ``before`` are unaffected (the most recent past busy
        segment is kept as the wake/gap anchor).
        """
        try:
            self.vms.remove(vm)
        except ValueError:
            raise CapacityError(
                f"{vm} is not placed on {self.server}",
                server_id=self.server.server_id) from None
        if before is not None:
            self.compact(before)
        else:
            self._notify()

    def compact(self, before: int) -> None:
        """Drop occupancy/segment detail strictly before time ``before``.

        Keeps the latest fully-past busy segment: its end anchors the gap
        and wake-up arithmetic for future placements, so decisions after
        compaction match what the uncompacted state would have decided.
        """
        self._occ.compact(before)
        # Segments with end < before are fully past; keep the last one.
        past = bisect.bisect_left(self._busy_ends, before)
        if past > 1:
            del self._busy_starts[: past - 1]
            del self._busy_ends[: past - 1]
        self._notify()

    def _rebuild(self) -> None:
        """Recompute busy segments and cost from the current VM set."""
        merged = merge_intervals(vm.interval for vm in self.vms)
        self._busy_starts = [seg.start for seg in merged]
        self._busy_ends = [seg.end for seg in merged]
        self.cost = server_cost(self.server.spec, self.vms,
                                policy=self.policy).total

    def _merge_in(self, iv: TimeInterval) -> None:
        lo, hi = self._affected_range(iv)
        if lo >= hi:
            self._busy_starts.insert(lo, iv.start)
            self._busy_ends.insert(lo, iv.end)
            return
        merged_start = min(iv.start, self._busy_starts[lo])
        merged_end = max(iv.end, self._busy_ends[hi - 1])
        self._busy_starts[lo:hi] = [merged_start]
        self._busy_ends[lo:hi] = [merged_end]

    # -- introspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.vms

    @property
    def is_pristine(self) -> bool:
        """Never hosted anything: no live VMs *and* no busy history.

        Pristine servers of the same spec are interchangeable for
        placement — identical probe verdicts and identical incremental
        cost — which the fused min-energy scan exploits.
        """
        return not self.vms and not self._busy_starts

    def occupancy_points(self) -> int:
        """Number of change points (or dense slots) the index tracks now."""
        return len(self._occ)

    def busy_segments(self) -> list[TimeInterval]:
        return [TimeInterval(s, e)
                for s, e in zip(self._busy_starts, self._busy_ends)]

    def timeline(self) -> ServerTimeline:
        busy = self.busy_segments()
        idle = [TimeInterval(a.end + 1, b.start - 1)
                for a, b in zip(busy, busy[1:])]
        return ServerTimeline(busy=tuple(busy), idle=tuple(idle))

    def __repr__(self) -> str:
        return (f"ServerState({self.server}, vms={len(self.vms)}, "
                f"cost={self.cost:.1f})")


def _gap(prev_end: int | None, next_start: int | None) -> TimeInterval | None:
    """The idle gap between a segment ending at ``prev_end`` and one
    starting at ``next_start``; ``None`` when either side is open or the
    segments touch."""
    if prev_end is None or next_start is None:
        return None
    if next_start - prev_end <= 1:
        return None
    return TimeInterval(prev_end + 1, next_start - 1)


def _gap_delta(spec, old: TimeInterval | None, new: TimeInterval | None,
               policy: SleepPolicy) -> float:
    old_cost = gap_cost(spec, old, policy) if old is not None else 0.0
    new_cost = gap_cost(spec, new, policy) if new is not None else 0.0
    return new_cost - old_cost
