"""Deterministic first fit (ablation of FFPS without the random shuffle).

Identical to FFPS except that servers are scanned in fleet id order. Useful
to separate how much of FFPS's behaviour comes from the random ordering
versus the first-fit rule itself.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["FirstFit"]


class FirstFit(Allocator):
    """First fit over servers in id order."""

    name = "first-fit"

    #: Sharded scans stop at the shard-local first fit; the reduction
    #: keeps the smallest scan ordinal — the sequential winner.
    scan_mode = "first"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: the scan position (fleet id order)."""
        return float(state.server.server_id)

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        kernel = self._kernel_for(states)
        if kernel is not None:
            positions = self._index.candidate_positions(vm)
            i = self._kernel_first(vm, kernel, positions)
            return None if i is None \
                else kernel.state_at(int(positions[i]))
        for state in self._candidates(vm, states):
            if self._examine(vm, state) is not None:
                return state
        return None

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return feasible[0]
