"""Round robin: rotate through the fleet, skipping infeasible servers.

Deliberately spreads consecutive VMs across distinct servers — the
archetypal load-balancing placement that ignores energy entirely. Included
for the algorithm-comparison example and the ablation benches.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["RoundRobin"]


class RoundRobin(Allocator):
    """Cycle through servers, placing each VM on the next feasible one."""

    name = "round-robin"

    def prepare(self, states: Sequence[ServerState]) -> None:
        self._next = 0

    def select(self, vm: VM,
               states: Sequence[ServerState]) -> ServerState | None:
        n = len(states)
        for offset in range(n):
            state = states[(self._next + offset) % n]
            if self.admissible(vm, state):
                self._next = (self._next + offset + 1) % n
                return state
        return None

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return feasible[0]
