"""Round robin: rotate through the fleet, skipping infeasible servers.

Deliberately spreads consecutive VMs across distinct servers — the
archetypal load-balancing placement that ignores energy entirely. Included
for the algorithm-comparison example and the ablation benches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["RoundRobin"]


class RoundRobin(Allocator):
    """Cycle through servers, placing each VM on the next feasible one."""

    name = "round-robin"

    #: First fit along the rotation; scan ordinals are rotation offsets,
    #: so the reduction keeps the nearest feasible slot and
    #: :meth:`_on_sharded_select` advances the cursor past it — counting
    #: skipped servers exactly like the sequential scan.
    scan_mode = "first"

    def on_prepare(self, states: Sequence[ServerState]) -> None:
        self._next = 0
        self._fleet_size = len(states)

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: distance ahead in the rotation."""
        return float((state.server.server_id - self._next)
                     % max(1, self._fleet_size))

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        n = len(states)
        kernel = self._kernel_for(states)
        if kernel is not None and n:
            rotation = np.concatenate(
                (np.arange(self._next, n, dtype=np.intp),
                 np.arange(0, self._next, dtype=np.intp)))
            offsets = np.arange(n, dtype=np.intp)
            mask = self._index.admitted_mask(vm)
            if mask is not None:
                keep = mask[rotation]
                rotation, offsets = rotation[keep], offsets[keep]
            i = self._kernel_first(vm, kernel, rotation)
            if i is None:
                return None
            # Advance past the chosen slot; statically-skipped servers
            # keep their rotation offsets, exactly as if probed.
            self._next = (self._next + int(offsets[i]) + 1) % n
            return kernel.state_at(int(rotation[i]))
        admits = self._spec_admits(vm, states)
        for offset in range(n):
            state = states[(self._next + offset) % n]
            if admits is not None and not admits[id(state.server.spec)]:
                continue
            if self._examine(vm, state) is not None:
                # Advance past the chosen slot; statically-skipped servers
                # keep their place in the rotation, exactly as if probed.
                self._next = (self._next + offset + 1) % n
                return state
        return None

    def _scan_sequence(self, vm: VM, states: Sequence[ServerState]
                       ) -> list[tuple[int, ServerState]]:
        """The current rotation as (offset, state) pairs; statically
        inadmissible servers are dropped but keep their offsets, so the
        cursor advance stays identical to the sequential scan."""
        n = len(states)
        admits = self._spec_admits(vm, states)
        sequence: list[tuple[int, ServerState]] = []
        for offset in range(n):
            state = states[(self._next + offset) % n]
            if admits is not None and not admits[id(state.server.spec)]:
                continue
            sequence.append((offset, state))
        return sequence

    def _on_sharded_select(self, vm: VM, state: ServerState,
                           ordinal: int) -> None:
        self._next = (self._next + ordinal + 1) % self._fleet_size

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return feasible[0]
