"""Allocation algorithms: the paper's heuristic, its FFPS baseline, and a
zoo of classic comparators."""

from repro.allocators.base import Allocator
from repro.allocators.batch import Decision, ShardScan
from repro.allocators.best_fit import BestFit
from repro.allocators.ffps import FirstFitPowerSaving
from repro.allocators.first_fit import FirstFit
from repro.allocators.gamma_ff import GammaFF
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.power_aware import PowerAwareFirstFit
from repro.allocators.random_fit import RandomFit
from repro.allocators.registry import ALLOCATORS, allocator_names, make_allocator
from repro.allocators.round_robin import RoundRobin
from repro.allocators.state import ServerState
from repro.allocators.worst_fit import WorstFit

__all__ = [
    "Allocator",
    "BestFit",
    "Decision",
    "ShardScan",
    "FirstFitPowerSaving",
    "FirstFit",
    "GammaFF",
    "MinIncrementalEnergy",
    "PowerAwareFirstFit",
    "RandomFit",
    "ALLOCATORS",
    "allocator_names",
    "make_allocator",
    "RoundRobin",
    "ServerState",
    "WorstFit",
]
