"""Result types of the batch placement API.

:meth:`repro.allocators.base.Allocator.allocate_batch` returns one
:class:`Decision` per offered VM, *in the request order* — unlike
:meth:`~repro.allocators.base.Allocator.allocate`, a batch does not
raise when a VM fits nowhere; the rejection is reported as a decision
with ``server_id=None`` so callers see the whole batch outcome at once
(the shape the service's ``place_batch`` operation serializes).

:class:`ShardScan` is the internal per-shard scan result that the
deterministic reduction folds; it is exported for allocator subclasses
that override :meth:`~repro.allocators.base.Allocator._scan_shard`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["Decision", "ShardScan"]


@dataclass(frozen=True)
class Decision:
    """The batch-placement outcome for one VM.

    ``server_id`` is ``None`` when no admissible server could host the
    VM; ``energy_delta`` is the committed Eq.-17 incremental energy
    (``0.0`` for rejections).
    """

    vm: VM
    server_id: int | None
    energy_delta: float = 0.0

    @property
    def placed(self) -> bool:
        """Whether the VM landed on a server."""
        return self.server_id is not None


@dataclass
class ShardScan:
    """One shard's contribution to a sharded selection.

    ``winner``/``key``/``ordinal`` describe the shard-local best
    candidate under the allocator's scan mode (``ordinal`` is the
    winner's position in the full scan sequence, the ultimate
    tie-break); ``feasible`` carries every admissible state for
    collect-mode allocators. ``evaluated``/``admissible`` are the
    shard-local probe counters, summed into the allocator's
    ``candidates_evaluated`` / ``candidates_feasible``.
    """

    winner: ServerState | None = None
    key: float = math.inf
    ordinal: int = -1
    feasible: Sequence[ServerState] = field(default_factory=tuple)
    evaluated: int = 0
    admissible: int = 0
