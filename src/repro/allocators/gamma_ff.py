"""GammaFF: first fit under the Γ-robust capacity constraint.

The classic robust bin-packing heuristic (Han et al. 2025; ROADMAP's
Γ-robust item): scan servers in id order and take the first one whose
*robust* capacity check admits the VM — nominal committed demand plus
the Γ largest uncertainty radii among the overlapping residents (the
candidate included) must fit at every time unit.

Mechanically this is :class:`~repro.allocators.first_fit.FirstFit`
with an active :class:`~repro.robust.config.RobustnessConfig` installed
into its engine config: the robust constraint lives inside
``ServerState.probe`` / the fleet kernel, so the scan logic (including
the sharded and kernel-wave variants) is inherited unchanged. Any other
registry allocator gains the same robust mode by passing an engine spec
with ``gamma=`` — this class simply gives the canonical Γ-first-fit a
name and a first-class ``gamma`` knob::

    make_allocator("gamma-ff", gamma=2)
    make_allocator("gamma-ff", gamma=3, mode="box")
    make_allocator("min-energy", engine="indexed:gamma=2")  # same idea
"""

from __future__ import annotations

from dataclasses import replace

from repro.allocators.first_fit import FirstFit
from repro.energy.cost import SleepPolicy
from repro.placement.config import EngineConfig
from repro.robust.config import RobustnessConfig

__all__ = ["GammaFF"]


class GammaFF(FirstFit):
    """First fit with the Γ-robust feasibility probe."""

    name = "gamma-ff"

    def __init__(self, *, gamma: int = 1, mode: str = "gamma",
                 seed: int | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: EngineConfig | None = None) -> None:
        super().__init__(seed=seed, policy=policy, engine=engine)
        if self.engine_config.robustness is None:
            # The ctor knobs apply only when the engine spec does not
            # already carry a robustness config (the spec wins, so
            # "gamma-ff" with engine="indexed:gamma=3" honours the 3).
            self.engine_config = replace(
                self.engine_config,
                robustness=RobustnessConfig(gamma=gamma, mode=mode))

    @property
    def gamma(self) -> int:
        """The effective uncertainty budget."""
        return self.engine_config.robustness.gamma
