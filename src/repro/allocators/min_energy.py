"""The paper's heuristic: minimum incremental energy cost (Sec. III).

VMs are allocated in increasing order of their starting time. For each VM,
among the servers with sufficient spare CPU and memory throughout the VM's
interval, the one whose Eq.-17 energy cost would increase the *least* is
selected. The incremental cost captures all three effects the paper argues
for: energy-efficient servers are preferred (small ``W_ij``), consolidation
onto already-busy small servers is preferred (no new idle power), and when
a wake-up is unavoidable, servers with low transition cost win.

Ties are broken by server id, making the algorithm fully deterministic.

With the indexed engine the selection is a fused scan that provably cannot
change the answer, only skip losers:

* the run cost ``W_ij`` depends only on the server *type*, so it is
  computed once per type, not once per server;
* under the OPTIMAL and NEVER_SLEEP policies the non-run delta is
  non-negative (busying an interval never lowers idle/gap energy), so
  ``W_ij`` lower-bounds the incremental cost and any server whose type's
  run cost already matches-or-exceeds the incumbent (within the 1e-12
  tie-break band) is skipped without probing. ALWAYS_SLEEP lacks the
  bound (filling a gap can remove a forced wake-up) and is never pruned;
* *pristine* servers (no busy history) of one type all yield the same
  verdict and the same cost, so only the first admissible one per type is
  probed — a strictly-better candidate can never hide among its clones.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.batch import ShardScan
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.energy.power import run_energy
from repro.model.vm import VM

__all__ = ["MinIncrementalEnergy"]

#: Tie-break band: an incumbent is only displaced by a strictly better
#: candidate, "better" meaning an improvement beyond this tolerance.
_TIE_TOL = 1e-12


class MinIncrementalEnergy(Allocator):
    """Greedy allocation by least incremental Eq.-17 energy cost."""

    name = "min-energy"

    #: Sharded scans run the fused scan per shard and fold the shard
    #: winners in ascending fleet order with the same 1e-12
    #: strict-improvement band, so ties keep the lowest server id
    #: exactly like the sequential incumbent rule.
    scan_mode = "score"
    _shard_tie_tol = _TIE_TOL

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: the incremental Eq.-17 cost itself."""
        return state.incremental_cost(vm)

    def _scan_shard(self, vm, chunk):
        """The fused scan, shard-local (see :meth:`_select`): per-type
        run-energy caching, lower-bound pruning and pristine dedup all
        hold within a shard — the lower bound only gets *looser* against
        a shard-local incumbent, so no global winner is ever skipped."""
        prune = self._policy in (SleepPolicy.OPTIMAL,
                                 SleepPolicy.NEVER_SLEEP)
        constraints = self._constraints
        placed = self._placed_ids
        interval = vm.interval
        run_of: dict[int, float] = {}
        probed_pristine: set[int] = set()
        evaluated = admissible = 0
        best: ServerState | None = None
        best_delta = math.inf
        best_ordinal = -1
        for ordinal, state in chunk:
            spec = state.server.spec
            key = id(spec)
            run = run_of.get(key)
            if run is None:
                run = run_energy(spec, vm)
                run_of[key] = run
            if prune and run >= best_delta - _TIE_TOL:
                continue
            pristine = state.is_pristine
            if pristine and key in probed_pristine:
                continue
            verdict = state.probe(vm)
            evaluated += 1
            if not verdict.feasible:
                continue
            if constraints is not None and not constraints.allows(
                    vm.vm_id, state.server.server_id, placed):
                continue
            admissible += 1
            if pristine:
                probed_pristine.add(key)
            delta = run + state.idle_delta(interval)
            if delta < best_delta - _TIE_TOL:
                best = state
                best_delta = delta
                best_ordinal = ordinal
        return ShardScan(winner=best, key=best_delta, ordinal=best_ordinal,
                         evaluated=evaluated, admissible=admissible)

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        index = self._index
        if index is None or not index.covers(states):
            return super()._select(vm, states)
        groups = index.groups_for(vm)
        if groups is not None:
            return self._select_queued(vm, states, groups)
        # Fused fleet-order scan (see module docstring): same winner and
        # same 1e-12 tie-breaking as probing every server, fewer probes.
        prune = self._policy in (SleepPolicy.OPTIMAL,
                                 SleepPolicy.NEVER_SLEEP)
        interval = vm.interval
        run_of: dict[int, float] = {}
        probed_pristine: set[int] = set()
        best: ServerState | None = None
        best_delta = math.inf
        for state in index.candidates(vm):
            spec = state.server.spec
            key = id(spec)
            run = run_of.get(key)
            if run is None:
                run = run_energy(spec, vm)
                run_of[key] = run
            if prune and run >= best_delta - _TIE_TOL:
                continue
            pristine = state.is_pristine
            if pristine and key in probed_pristine:
                continue
            if self._examine(vm, state) is None:
                continue
            if pristine:
                probed_pristine.add(key)
            delta = run + state.idle_delta(interval)
            if delta < best_delta - _TIE_TOL:
                best = state
                best_delta = delta
        return best

    def _select_queued(self, vm: VM, states: Sequence[ServerState],
                       groups) -> ServerState | None:
        """The fused scan over the index's per-type candidate queues.

        A k-way merge walks the admissible types' busy and pristine
        position queues in ascending fleet position — i.e. exactly the
        fleet-order walk of the fused scan, minus the candidates that
        scan would have skipped without probing. The skips never enter
        the merge at all:

        * a type whose cached run cost reaches the incumbent's delta
          (within the tie band) is dropped queue and all the moment it
          surfaces — the lower bound is monotone, so it can never
          re-qualify;
        * once a type's pristine representative has been probed
          admissible, the rest of its pristine queue is dropped in one
          step (the clones are interchangeable).

        Probes still go through :meth:`_examine` one winner-candidate
        at a time, so the evaluated/feasible counters equal the fused
        scan's to the probe. This is where the 10k-fleet speedup comes
        from: the per-VM cost is proportional to the handful of probes,
        not to the fleet size.
        """
        prune = self._policy in (SleepPolicy.OPTIMAL,
                                 SleepPolicy.NEVER_SLEEP)
        interval = vm.interval
        best: ServerState | None = None
        best_delta = math.inf
        # Heap of queue cursors: (fleet position, queue kind, cursor,
        # group). Positions are unique across all queues, so entries
        # never tie and the group object is never compared.
        heap: list = []
        runs: dict[int, float] = {}
        probed_pristine: set[int] = set()
        for group in groups:
            runs[id(group)] = run_energy(group.spec, vm)
            if group.busy:
                heap.append((group.busy[0], 0, 0, group))
            if group.pristine:
                heap.append((group.pristine[0], 1, 0, group))
        heapq.heapify(heap)
        while heap:
            pos, kind, cursor, group = heapq.heappop(heap)
            run = runs[id(group)]
            if prune and run >= best_delta - _TIE_TOL:
                # Drop this queue; the group's other queue is dropped
                # the same way when it surfaces (best_delta only ever
                # decreases, so the bound stays violated).
                continue
            if kind == 1 and id(group) in probed_pristine:
                continue  # interchangeable clones: drop the whole queue
            queue = group.busy if kind == 0 else group.pristine
            if cursor + 1 < len(queue):
                heapq.heappush(
                    heap, (queue[cursor + 1], kind, cursor + 1, group))
            state = states[pos]
            if self._examine(vm, state) is None:
                continue
            if kind == 1:
                probed_pristine.add(id(group))
            delta = run + state.idle_delta(interval)
            if delta < best_delta - _TIE_TOL:
                best = state
                best_delta = delta
        return best

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        best = feasible[0]
        best_delta = best.incremental_cost(vm)
        for state in feasible[1:]:
            delta = state.incremental_cost(vm)
            if delta < best_delta - _TIE_TOL:
                best = state
                best_delta = delta
        return best
