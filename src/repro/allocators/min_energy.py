"""The paper's heuristic: minimum incremental energy cost (Sec. III).

VMs are allocated in increasing order of their starting time. For each VM,
among the servers with sufficient spare CPU and memory throughout the VM's
interval, the one whose Eq.-17 energy cost would increase the *least* is
selected. The incremental cost captures all three effects the paper argues
for: energy-efficient servers are preferred (small ``W_ij``), consolidation
onto already-busy small servers is preferred (no new idle power), and when
a wake-up is unavoidable, servers with low transition cost win.

Ties are broken by server id, making the algorithm fully deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["MinIncrementalEnergy"]


class MinIncrementalEnergy(Allocator):
    """Greedy allocation by least incremental Eq.-17 energy cost."""

    name = "min-energy"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: the incremental Eq.-17 cost itself."""
        return state.incremental_cost(vm)

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        best = feasible[0]
        best_delta = best.incremental_cost(vm)
        for state in feasible[1:]:
            delta = state.incremental_cost(vm)
            if delta < best_delta - 1e-12:
                best = state
                best_delta = delta
        return best
