"""The allocator framework.

All algorithms in the paper's evaluation share the same outer loop
(Sec. III / IV-A): VMs are processed **in increasing order of their starting
time**, and for each VM the algorithm chooses one server among those with
sufficient spare CPU and memory throughout the VM's interval. Subclasses
implement only the selection rule via :meth:`Allocator.choose`.

Allocators are deterministic given their ``seed``; randomized strategies
(FFPS's shuffled server order, random fit) draw from a private
``numpy.random.Generator`` so runs are reproducible.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import AllocationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.vm import VM
from repro.obs.explain import (
    CandidateVerdict,
    ExplainRecorder,
    PlacementExplanation,
)
from repro.obs.tracer import get_tracer

__all__ = ["Allocator"]


class Allocator(abc.ABC):
    """Base class for all allocation algorithms.

    Parameters
    ----------
    seed:
        Seed for the allocator's private random generator. Deterministic
        algorithms ignore it but accept it so every algorithm can be
        constructed uniformly by the experiment harness.
    policy:
        Sleep policy used when evaluating energy costs during allocation
        (the paper's rule, :attr:`SleepPolicy.OPTIMAL`, by default).
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def __init__(self, seed: int | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL) -> None:
        self._rng = np.random.default_rng(seed)
        self._policy = policy
        self._constraints: PlacementConstraints | None = None
        self._placed_ids: dict[int, int] = {}
        #: servers scanned / found feasible by the most recent ``select``
        #: (fed into the service's candidate-count histogram).
        self.candidates_evaluated = 0
        self.candidates_feasible = 0

    # -- template method -----------------------------------------------------

    def allocate(self, vms: Iterable[VM], cluster: Cluster,
                 constraints: PlacementConstraints | None = None, *,
                 recorder: ExplainRecorder | None = None) -> Allocation:
        """Place every VM; returns the resulting :class:`Allocation`.

        VMs are processed in increasing order of start time (ties broken by
        end time then id, for determinism). Optional placement
        ``constraints`` (affinity / anti-affinity groups) restrict the
        admissible servers per VM on top of capacity. With a ``recorder``
        every decision additionally emits a
        :class:`~repro.obs.explain.PlacementExplanation` — including the
        final, rejected one when allocation fails.

        Raises
        ------
        AllocationError
            When some VM fits no admissible server for its whole duration.
        """
        ordered = self.order_vms(list(vms))
        states = [ServerState(server, policy=self._policy)
                  for server in cluster]
        self.prepare(states)
        self._constraints = constraints
        self._placed_ids: dict[int, int] = {}
        tracer = get_tracer()
        try:
            with tracer.span("allocator.allocate", algorithm=self.name,
                             vms=len(ordered), servers=len(states)):
                placements: dict[VM, int] = {}
                for vm in ordered:
                    if recorder is not None:
                        chosen, explanation = self.explain_select(
                            vm, states)
                        recorder.record(explanation)
                    else:
                        chosen = self.select(vm, states)
                    if chosen is None:
                        raise AllocationError(
                            f"no admissible server can host {vm} for its "
                            f"whole duration", vm_id=vm.vm_id)
                    chosen.place(vm)
                    placements[vm] = chosen.server.server_id
                    self._placed_ids[vm.vm_id] = chosen.server.server_id
                    if tracer.enabled:
                        tracer.instant(
                            "place", vm_id=vm.vm_id,
                            server_id=chosen.server.server_id,
                            feasible=self.candidates_feasible,
                            evaluated=self.candidates_evaluated)
        finally:
            self._constraints = None
            self._placed_ids = {}
        return Allocation(cluster, placements)

    def admissible(self, vm: VM, state: ServerState) -> bool:
        """Capacity feasibility plus any active placement constraints."""
        if not state.fits(vm):
            return False
        if self._constraints is None:
            return True
        return self._constraints.allows(
            vm.vm_id, state.server.server_id, self._placed_ids)

    def inadmissible_reason(self, vm: VM, state: ServerState) -> str | None:
        """Why ``state`` cannot host ``vm`` (``None`` when it can)."""
        reason = state.fit_reason(vm)
        if reason is not None:
            return reason
        if self._constraints is not None and not self._constraints.allows(
                vm.vm_id, state.server.server_id, self._placed_ids):
            return "constraint"
        return None

    # -- explain-traces ------------------------------------------------------

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """This algorithm's ranking score for one feasible candidate.

        Lower is always more preferred; ``None`` means the algorithm
        applies no score to this candidate (e.g. random fit). Used only
        by explain-traces — never on the selection hot path — and must
        not mutate allocator state.
        """
        return None

    def explain_select(self, vm: VM, states: Sequence[ServerState]
                       ) -> tuple[ServerState | None, PlacementExplanation]:
        """:meth:`select` plus the full per-candidate explanation.

        Every server is given a feasibility verdict (with the failing
        constraint) and, when feasible, its Eq.-2/3 cost terms and the
        algorithm's ranking score. Scores are evaluated *before* the
        selection so stateful scan orders (round robin) are reported as
        the algorithm actually saw them.
        """
        pre: list[tuple[str | None, object, float | None]] = []
        for state in states:
            reason = self.inadmissible_reason(vm, state)
            if reason is None:
                pre.append((None, state.cost_terms(vm),
                            self.candidate_score(vm, state)))
            else:
                pre.append((reason, None, None))
        chosen = self.select(vm, states)
        chosen_id = chosen.server.server_id if chosen is not None else None
        verdicts = tuple(
            CandidateVerdict(
                server_id=state.server.server_id,
                server_type=state.server.spec.name,
                feasible=reason is None, reason=reason, cost=cost,
                score=score,
                chosen=state.server.server_id == chosen_id)
            for state, (reason, cost, score) in zip(states, pre))
        explanation = PlacementExplanation(
            vm_id=vm.vm_id, algorithm=self.name,
            decision="placed" if chosen is not None else "rejected",
            server_id=chosen_id, delay=0, candidates=verdicts)
        return chosen, explanation

    # -- hooks ---------------------------------------------------------------

    def prepare(self, states: Sequence[ServerState]) -> None:
        """Hook run once before any placement (e.g. shuffle an order)."""

    def order_vms(self, vms: list[VM]) -> list[VM]:
        """Processing order: increasing start time (the paper's online
        setting). Offline extensions may override this with clairvoyant
        orders such as largest-job-first."""
        return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))

    def select(self, vm: VM,
               states: Sequence[ServerState]) -> ServerState | None:
        """Pick the server for ``vm``, or ``None`` when nothing fits.

        The default gathers all admissible servers and delegates to
        :meth:`choose`; first-fit-style algorithms override this to stop at
        the first admissible server in their scan order.
        """
        feasible = [st for st in states if self.admissible(vm, st)]
        self.candidates_evaluated = len(states)
        self.candidates_feasible = len(feasible)
        if not feasible:
            return None
        return self.choose(vm, feasible)

    @abc.abstractmethod
    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        """Select the server for ``vm`` among the feasible candidates.

        ``feasible`` is non-empty and preserves the fleet's id order.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
