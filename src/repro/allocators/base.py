"""The allocator framework.

All algorithms in the paper's evaluation share the same outer loop
(Sec. III / IV-A): VMs are processed **in increasing order of their starting
time**, and for each VM the algorithm chooses one server among those with
sufficient spare CPU and memory throughout the VM's interval. Subclasses
implement only the selection rule via :meth:`Allocator.choose` (or, for
scan-order algorithms, :meth:`Allocator._select`).

Feasibility goes through :meth:`Allocator._examine`, which wraps
``ServerState.probe`` and maintains the ``candidates_evaluated`` /
``candidates_feasible`` counters — *probes performed* and *admissible
probes* — uniformly for every algorithm, so the service's candidate-count
histogram compares like with like across allocators.

Allocators are deterministic given their ``seed``; randomized strategies
(FFPS's shuffled server order, random fit) draw from a private
``numpy.random.Generator`` so runs are reproducible. Construction is
keyword-only (``seed``, ``policy``, ``engine``) so
:func:`~repro.allocators.registry.make_allocator` can forward arbitrary
per-algorithm parameters by name.
"""

from __future__ import annotations

import abc
import math
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.allocators.batch import Decision, ShardScan
from repro.allocators.state import ServerState
from repro.energy.cost import SleepPolicy
from repro.exceptions import AllocationError
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.model.vm import VM
from repro.obs.explain import (
    CandidateVerdict,
    ExplainRecorder,
    PlacementExplanation,
)
from repro.obs.tracer import get_tracer
from repro.placement.config import EngineConfig
from repro.placement.feasibility import Feasibility
from repro.placement.index import CandidateIndex
from repro.placement.kernels import FeasibilityBatch, FleetKernel
from repro.placement.sharding import ShardedFleet

__all__ = ["Allocator"]


class Allocator(abc.ABC):
    """Base class for all allocation algorithms.

    Parameters (keyword-only)
    -------------------------
    seed:
        Seed for the allocator's private random generator. Deterministic
        algorithms ignore it but accept it so every algorithm can be
        constructed uniformly by the experiment harness.
    policy:
        Sleep policy used when evaluating energy costs during allocation
        (the paper's rule, :attr:`SleepPolicy.OPTIMAL`, by default).
    engine:
        An :class:`~repro.placement.config.EngineConfig` selecting the
        occupancy backend (``"indexed"`` sparse skyline — the default —
        or the ``"dense"`` numpy oracle), whether scans may use the
        vectorized fleet-probe kernel, and an optional shard-count
        hint. ``None`` means the default config. Passing the engine as
        a bare string still works but is deprecated (it warns; use
        ``EngineConfig`` or, for config files/CLIs,
        :meth:`EngineConfig.parse`).
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    #: How :meth:`select_sharded` treats candidates. ``"collect"``
    #: gathers every admissible server and delegates to :meth:`choose`
    #: (matching the default :meth:`_select`); ``"first"`` stops each
    #: shard at its first admissible server and the reduction keeps the
    #: smallest scan ordinal; ``"score"`` keeps each shard's best
    #: :meth:`shard_key` and the reduction folds the shard winners in
    #: ascending-ordinal order with the :attr:`_shard_tie_tol` band.
    #: Subclasses that override :meth:`_select` must declare the
    #: matching mode (and hooks) for sharded selection to stay
    #: bit-identical to their sequential scan.
    scan_mode: str = "collect"

    #: Strict-improvement tolerance of the score-mode fold: an incumbent
    #: is displaced only by ``key < incumbent - tol``, so ties keep the
    #: earliest scan position exactly like the sequential scan.
    _shard_tie_tol: float = 0.0

    def __init__(self, *, seed: int | None = None,
                 policy: SleepPolicy = SleepPolicy.OPTIMAL,
                 engine: EngineConfig | str | None = None) -> None:
        self._rng = np.random.default_rng(seed)
        self._policy = policy
        #: the resolved engine configuration (occupancy backend, batch
        #: kernel toggle, shard hint)
        self.engine_config = EngineConfig.coerce(engine)
        #: the occupancy backend name (kept for compatibility)
        self.engine = self.engine_config.engine
        self._index: CandidateIndex | None = None
        self._constraints: PlacementConstraints | None = None
        self._placed_ids: dict[int, int] = {}
        #: servers probed / found admissible by the most recent ``select``
        #: (fed into the service's candidate-count histogram).
        self.candidates_evaluated = 0
        self.candidates_feasible = 0

    # -- template method -----------------------------------------------------

    def allocate(self, vms: Iterable[VM], cluster: Cluster,
                 constraints: PlacementConstraints | None = None, *,
                 recorder: ExplainRecorder | None = None) -> Allocation:
        """Place every VM; returns the resulting :class:`Allocation`.

        VMs are processed in increasing order of start time (ties broken by
        end time then id, for determinism). Optional placement
        ``constraints`` (affinity / anti-affinity groups) restrict the
        admissible servers per VM on top of capacity. With a ``recorder``
        every decision additionally emits a
        :class:`~repro.obs.explain.PlacementExplanation` — including the
        final, rejected one when allocation fails.

        Raises
        ------
        AllocationError
            When some VM fits no admissible server for its whole duration.
        """
        ordered = self.order_vms(list(vms))
        states = [ServerState(server, policy=self._policy,
                              engine=self.engine_config)
                  for server in cluster]
        self.prepare(states)
        self._constraints = constraints
        self._placed_ids: dict[int, int] = {}
        tracer = get_tracer()
        try:
            with tracer.span("allocator.allocate", algorithm=self.name,
                             vms=len(ordered), servers=len(states)):
                placements: dict[VM, int] = {}
                for vm in ordered:
                    if recorder is not None:
                        chosen, explanation = self.explain_select(
                            vm, states)
                        recorder.record(explanation)
                    else:
                        chosen = self.select(vm, states)
                    if chosen is None:
                        raise AllocationError(
                            f"no admissible server can host {vm} for its "
                            f"whole duration", vm_id=vm.vm_id)
                    chosen.place(vm)
                    placements[vm] = chosen.server.server_id
                    self._placed_ids[vm.vm_id] = chosen.server.server_id
                    if tracer.enabled:
                        tracer.instant(
                            "place", vm_id=vm.vm_id,
                            server_id=chosen.server.server_id,
                            feasible=self.candidates_feasible,
                            evaluated=self.candidates_evaluated)
        finally:
            self._constraints = None
            self._placed_ids = {}
        return Allocation(cluster, placements)

    def allocate_batch(self, vms: Iterable[VM], cluster: Cluster,
                       constraints: PlacementConstraints | None = None, *,
                       shards: int | None = None,
                       max_workers: int | None = None
                       ) -> list[Decision]:
        """Place a whole batch; returns one :class:`Decision` per VM.

        The batch is processed in the same deterministic order as
        :meth:`allocate` (increasing start time, ties by end then id),
        but decisions come back *in the order the VMs were given* and a
        VM that fits nowhere yields a rejection decision
        (``server_id=None``) instead of raising — batch callers want
        the whole outcome, not the first failure.

        With ``shards > 1`` the feasibility scan of every selection fans
        out across a :class:`~repro.placement.sharding.ShardedFleet` of
        ``shards`` partitions (``max_workers`` threads); the reduction
        is deterministic (score, then scan ordinal — see
        :meth:`select_sharded`), so the placements and their Eq.-17
        energy are bit-identical for every shard count. ``shards=None``
        falls back to the :class:`EngineConfig` hint (default 1).
        """
        if shards is None:
            shards = self.engine_config.shards or 1
        items = list(vms)
        ordered = self.order_vms(list(items))
        # Decisions map back to the request order; identity-keyed so a
        # clairvoyant order_vms override (offline extensions) cannot
        # confuse equal-valued records.
        slots: dict[int, list[int]] = {}
        for i, vm in enumerate(items):
            slots.setdefault(id(vm), []).append(i)
        states = [ServerState(server, policy=self._policy,
                              engine=self.engine_config)
                  for server in cluster]
        self.prepare(states)
        self._constraints = constraints
        self._placed_ids = {}
        decisions: list[Decision | None] = [None] * len(items)
        tracer = get_tracer()
        try:
            with ShardedFleet(states, shards=shards,
                              max_workers=max_workers) as fleet:
                with tracer.span("allocator.allocate_batch",
                                 algorithm=self.name, vms=len(items),
                                 servers=len(states),
                                 shards=fleet.n_shards):
                    for vm in ordered:
                        i = slots[id(vm)].pop(0)
                        chosen = self.select_sharded(vm, fleet)
                        if chosen is None:
                            decisions[i] = Decision(vm=vm, server_id=None)
                            continue
                        delta = chosen.place(vm)
                        server_id = chosen.server.server_id
                        self._placed_ids[vm.vm_id] = server_id
                        decisions[i] = Decision(vm=vm, server_id=server_id,
                                                energy_delta=delta)
        finally:
            self._constraints = None
            self._placed_ids = {}
        return decisions

    # -- probing -------------------------------------------------------------

    def admissible(self, vm: VM, state: ServerState) -> bool:
        """Capacity feasibility plus any active placement constraints."""
        if not state.probe(vm):
            return False
        if self._constraints is None:
            return True
        return self._constraints.allows(
            vm.vm_id, state.server.server_id, self._placed_ids)

    def inadmissible_reason(self, vm: VM, state: ServerState) -> str | None:
        """Why ``state`` cannot host ``vm`` (``None`` when it can)."""
        reason = state.probe(vm).reason
        if reason is not None:
            return reason
        if self._constraints is not None and not self._constraints.allows(
                vm.vm_id, state.server.server_id, self._placed_ids):
            return "constraint"
        return None

    def _examine(self, vm: VM, state: ServerState) -> Feasibility | None:
        """Probe one candidate, maintaining the selection counters.

        Returns the (truthy) verdict when ``state`` is admissible — capacity
        feasible *and* allowed by active placement constraints — else
        ``None``. Every examined server bumps ``candidates_evaluated``;
        admissible ones also bump ``candidates_feasible``. All selection
        paths route probes through here so the counters mean the same
        thing for every algorithm.
        """
        verdict = state.probe(vm)
        self.candidates_evaluated += 1
        if not verdict.feasible:
            return None
        if self._constraints is not None and not self._constraints.allows(
                vm.vm_id, state.server.server_id, self._placed_ids):
            return None
        self.candidates_feasible += 1
        return verdict

    def _candidates(self, vm: VM,
                    states: Sequence[ServerState]) -> Sequence[ServerState]:
        """Fleet-order candidates, statically pruned when the index applies.

        The candidate index (built by :meth:`prepare`) drops servers whose
        *type* can never host ``vm``; when ``states`` is not the prepared
        fleet (ad-hoc recovery scans), the full list is returned.
        """
        index = self._index
        if index is not None and index.covers(states):
            return index.candidates(vm)
        return states

    def _spec_admits(self, vm: VM, states: Sequence[ServerState]
                     ) -> dict[int, bool] | None:
        """Per-spec static admission map for custom scan orders.

        ``None`` when no index covers ``states`` (callers then probe every
        server, which is always correct).
        """
        index = self._index
        if index is not None and index.covers(states):
            return index.spec_admits(vm)
        return None

    # -- batch-kernel scans --------------------------------------------------

    def _kernel_for(self, states: Sequence[ServerState]
                    ) -> FleetKernel | None:
        """The fleet-probe kernel, when the prepared index covers
        ``states`` and the engine config enables it."""
        index = self._index
        if index is not None and index.covers(states):
            return index.kernel
        return None

    def _probe_candidates(self, vm: VM, states: Sequence[ServerState]
                          ) -> FeasibilityBatch | None:
        """Batch-probe the statically-admitted candidates in fleet order.

        One :meth:`~repro.placement.kernels.FleetKernel.probe_fleet`
        call replacing the per-server Python probe loop; ``None`` when
        the kernel is unavailable (dense engine, foreign fleet,
        ``kernel=off``) — callers then run their scalar scan.
        """
        kernel = self._kernel_for(states)
        if kernel is None:
            return None
        return kernel.probe_fleet(
            vm, self._index.candidate_positions(vm))

    def _admissible_rows(self, vm: VM,
                         batch: FeasibilityBatch) -> np.ndarray:
        """Candidate rows that are feasible *and* constraint-allowed.

        Maintains the selection counters exactly like a scalar sweep
        that probes every candidate: all rows count as evaluated, the
        admissible ones as feasible.
        """
        self.candidates_evaluated += len(batch)
        rows = batch.feasible_indices()
        constraints = self._constraints
        if constraints is not None and rows.size:
            placed = self._placed_ids
            rows = np.fromiter(
                (i for i in rows if constraints.allows(
                    vm.vm_id, batch.state_at(i).server.server_id,
                    placed)),
                dtype=np.intp)
        self.candidates_feasible += int(rows.size)
        return rows

    def _kernel_first(self, vm: VM, kernel: FleetKernel,
                      positions: np.ndarray) -> int | None:
        """First admissible candidate along ``positions`` (scan order).

        Batch-probes the scan in growing waves and walks each wave's
        verdicts in order, so the counters match the scalar
        short-circuit walk exactly: every candidate up to and including
        the winner counts as evaluated, only the winner as feasible,
        and candidates past the winner — probed speculatively by the
        wave — are not counted at all. Returns the winner's index into
        ``positions``.
        """
        constraints = self._constraints
        placed = self._placed_ids
        total = int(positions.size)
        lo, wave = 0, 64
        while lo < total:
            hi = min(total, lo + wave)
            batch = kernel.probe_fleet(vm, positions[lo:hi])
            for j in map(int, batch.feasible_indices()):
                state = batch.state_at(j)
                if constraints is not None and not constraints.allows(
                        vm.vm_id, state.server.server_id, placed):
                    continue
                self.candidates_evaluated += j + 1
                self.candidates_feasible += 1
                return lo + j
            self.candidates_evaluated += hi - lo
            lo, wave = hi, min(wave * 4, 2048)
        return None

    # -- explain-traces ------------------------------------------------------

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """This algorithm's ranking score for one feasible candidate.

        Lower is always more preferred; ``None`` means the algorithm
        applies no score to this candidate (e.g. random fit). Used only
        by explain-traces — never on the selection hot path — and must
        not mutate allocator state.
        """
        return None

    def explain_select(self, vm: VM, states: Sequence[ServerState]
                       ) -> tuple[ServerState | None, PlacementExplanation]:
        """:meth:`select` plus the full per-candidate explanation.

        Every server is given a feasibility verdict (with the failing
        constraint) and, when feasible, its Eq.-2/3 cost terms and the
        algorithm's ranking score. Scores are evaluated *before* the
        selection so stateful scan orders (round robin) are reported as
        the algorithm actually saw them. The counters still reflect the
        embedded :meth:`select` run — what the algorithm itself probed,
        not the exhaustive explain sweep.
        """
        # With the kernel available the whole-fleet feasibility sweep is
        # one batch probe whose verdicts (and reason strings) are
        # materialized lazily per candidate; the scalar fallback probes
        # each server. Either way the explain output is identical.
        kernel = self._kernel_for(states)
        batch = kernel.probe_fleet(vm) if kernel is not None else None
        constraints = self._constraints
        pre: list[tuple[str | None, object, float | None]] = []
        for i, state in enumerate(states):
            if batch is not None:
                reason = batch.reason(i)
                if reason is None and constraints is not None \
                        and not constraints.allows(
                            vm.vm_id, state.server.server_id,
                            self._placed_ids):
                    reason = "constraint"
            else:
                reason = self.inadmissible_reason(vm, state)
            if reason is None:
                pre.append((None, state.cost_terms(vm),
                            self.candidate_score(vm, state)))
            else:
                pre.append((reason, None, None))
        chosen = self.select(vm, states)
        chosen_id = chosen.server.server_id if chosen is not None else None
        verdicts = tuple(
            CandidateVerdict(
                server_id=state.server.server_id,
                server_type=state.server.spec.name,
                feasible=reason is None, reason=reason, cost=cost,
                score=score,
                chosen=state.server.server_id == chosen_id)
            for state, (reason, cost, score) in zip(states, pre))
        explanation = PlacementExplanation(
            vm_id=vm.vm_id, algorithm=self.name,
            decision="placed" if chosen is not None else "rejected",
            server_id=chosen_id, delay=0, candidates=verdicts)
        return chosen, explanation

    # -- hooks ---------------------------------------------------------------

    def prepare(self, states: Sequence[ServerState]) -> None:
        """Build the fleet candidate index, then run :meth:`on_prepare`.

        Called once per fleet before any placement. The index is only
        built for the indexed engine; the dense oracle path scans
        plainly. When the :class:`EngineConfig` enables the batch
        kernel, the index also builds the
        :class:`~repro.placement.kernels.FleetKernel` over the fleet's
        skylines and its incremental per-type candidate queues; both
        stay in sync through the state watcher protocol, so repeated
        fleet rebuilds re-run this cheaply.
        """
        if states and states[0].engine == "indexed":
            self._index = CandidateIndex(
                states, kernel=self.engine_config.use_kernel)
        else:
            self._index = None
        self.on_prepare(states)

    def on_prepare(self, states: Sequence[ServerState]) -> None:
        """Hook run once before any placement (e.g. shuffle an order)."""

    def order_vms(self, vms: list[VM]) -> list[VM]:
        """Processing order: increasing start time (the paper's online
        setting). Offline extensions may override this with clairvoyant
        orders such as largest-job-first."""
        return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))

    # -- selection -----------------------------------------------------------

    def select(self, vm: VM,
               states: Sequence[ServerState]) -> ServerState | None:
        """Pick the server for ``vm``, or ``None`` when nothing fits.

        Template method: resets the candidate counters, then delegates to
        :meth:`_select`. Subclasses override :meth:`_select` (scan-order
        algorithms) or :meth:`choose` (score-based algorithms), never this.
        """
        self.candidates_evaluated = 0
        self.candidates_feasible = 0
        return self._select(vm, states)

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        """Default selection: gather all admissible servers, delegate to
        :meth:`choose`. First-fit-style algorithms override this to stop
        at the first admissible server in their scan order.

        With the fleet-probe kernel available, the admissible set comes
        from one vectorized :meth:`_probe_candidates` sweep instead of
        a per-server probe loop — same candidates in the same fleet
        order, so :meth:`choose` (including random fit's RNG draw) sees
        an identical list.
        """
        batch = self._probe_candidates(vm, states)
        if batch is not None:
            rows = self._admissible_rows(vm, batch)
            if not rows.size:
                return None
            return self.choose(vm, [batch.state_at(int(i)) for i in rows])
        feasible = [st for st in self._candidates(vm, states)
                    if self._examine(vm, st) is not None]
        if not feasible:
            return None
        return self.choose(vm, feasible)

    # -- sharded selection ---------------------------------------------------

    def select_sharded(self, vm: VM,
                       fleet: ShardedFleet) -> ServerState | None:
        """:meth:`select` with the probe scan fanned out across shards.

        The scan sequence (:meth:`_scan_sequence`) is routed to the
        shard owning each server; every shard runs :meth:`_scan_shard`
        independently (in parallel when the fleet has a pool) and the
        per-shard results are folded by :meth:`_reduce_shards` with a
        deterministic tie-break — score first, then the scan ordinal,
        which in fleet order is the server id. The chosen server, and
        therefore the placement and its energy, is bit-identical to the
        sequential :meth:`select` for every shard count; only the probe
        counters may grow (a shard cannot see its neighbours'
        short-circuits).
        """
        if fleet.n_shards == 1:
            # One shard IS the sequential scan: delegate to
            # :meth:`select` under the shard lock, keeping its early
            # exit instead of materializing the whole scan sequence.
            if not len(fleet):
                return self.select(vm, fleet.states)
            with fleet.lock_for(0):
                started = perf_counter()
                chosen = self.select(vm, fleet.states)
                elapsed = perf_counter() - started
            if fleet.on_scan_time is not None:
                fleet.on_scan_time(elapsed)
            return chosen
        self.candidates_evaluated = 0
        self.candidates_feasible = 0
        sequence = self._scan_sequence(vm, fleet.states)
        chunks = fleet.scatter(sequence)
        # A fleet may execute the shard scans elsewhere (the service's
        # process worker pool exposes ``remote_scans``); the scan
        # sequence, the fold and every stateful hook stay right here,
        # so the dispatch choice cannot change the decision.
        remote = getattr(fleet, "remote_scans", None)
        if remote is not None:
            scans = remote(self, vm, chunks)
        else:
            scans = fleet.map_scans(
                lambda chunk: self._scan_shard(vm, chunk), chunks)
        for scan in scans:
            self.candidates_evaluated += scan.evaluated
            self.candidates_feasible += scan.admissible
        return self._reduce_shards(vm, scans)

    def _scan_sequence(self, vm: VM, states: Sequence[ServerState]
                       ) -> list[tuple[int, ServerState]]:
        """The ``(ordinal, state)`` pairs of this algorithm's scan, in
        scan order. The default is the statically-pruned fleet order of
        :meth:`_candidates`; algorithms with a custom scan order
        (shuffles, rotations, sorts) override this so the ordinals
        mirror the order their sequential ``_select`` walks."""
        return list(enumerate(self._candidates(vm, states)))

    def _scan_shard(self, vm: VM,
                    chunk: Sequence[tuple[int, ServerState]]) -> ShardScan:
        """Scan one shard's slice of the sequence (thread-safe).

        Runs on pool threads, so it must not touch shared allocator
        state: probes go through ``ServerState.probe`` directly (not
        :meth:`_examine`) and the counters are accumulated shard-locally
        in the returned :class:`ShardScan`, summed by the caller.
        """
        mode = self.scan_mode
        kernel = self._index.kernel if self._index is not None else None
        if kernel is not None and chunk:
            positions = kernel.positions_of([st for _, st in chunk])
            if positions is not None:
                return self._scan_shard_kernel(vm, chunk, kernel,
                                               positions)
        constraints = self._constraints
        placed = self._placed_ids
        tol = self._shard_tie_tol
        evaluated = admissible = 0
        winner: ServerState | None = None
        winner_key = math.inf
        winner_ordinal = -1
        feasible: list[ServerState] = []
        for ordinal, state in chunk:
            verdict = state.probe(vm)
            evaluated += 1
            if not verdict.feasible:
                continue
            if constraints is not None and not constraints.allows(
                    vm.vm_id, state.server.server_id, placed):
                continue
            admissible += 1
            if mode == "collect":
                feasible.append(state)
            elif mode == "first":
                winner, winner_key, winner_ordinal = \
                    state, float(ordinal), ordinal
                break
            else:  # "score"
                key = self.shard_key(vm, state, verdict)
                if winner is None or key < winner_key - tol:
                    winner, winner_key, winner_ordinal = state, key, ordinal
        return ShardScan(winner=winner, key=winner_key,
                         ordinal=winner_ordinal, feasible=feasible,
                         evaluated=evaluated, admissible=admissible)

    def _scan_shard_kernel(self, vm: VM,
                           chunk: Sequence[tuple[int, ServerState]],
                           kernel: FleetKernel,
                           positions: np.ndarray) -> ShardScan:
        """:meth:`_scan_shard` served by one batch probe per shard.

        The chunk's candidates are probed in a single
        ``probe_fleet`` call; the mode logic then replays the scalar
        walk over the batch verdicts, so winners, keys and counters are
        identical — ``first`` mode in particular still counts only the
        candidates up to its winner, not the speculatively probed rest.
        """
        mode = self.scan_mode
        constraints = self._constraints
        placed = self._placed_ids
        batch = kernel.probe_fleet(vm, positions)
        rows = batch.feasible_indices()
        if constraints is not None and rows.size:
            rows = np.fromiter(
                (i for i in rows if constraints.allows(
                    vm.vm_id, chunk[i][1].server.server_id, placed)),
                dtype=np.intp)
        if mode == "first":
            if rows.size:
                j = int(rows[0])
                return ShardScan(winner=chunk[j][1],
                                 key=float(chunk[j][0]),
                                 ordinal=chunk[j][0],
                                 evaluated=j + 1, admissible=1)
            return ShardScan(evaluated=len(chunk), admissible=0)
        if mode == "collect":
            return ShardScan(feasible=[chunk[int(i)][1] for i in rows],
                             evaluated=len(chunk),
                             admissible=int(rows.size))
        # "score": fold the admissible rows in scan order with the
        # strict-improvement band, exactly like the scalar incumbent.
        tol = self._shard_tie_tol
        keys = self.shard_keys(vm, batch)
        winner: ServerState | None = None
        winner_key = math.inf
        winner_ordinal = -1
        for i in map(int, rows):
            key = (float(keys[i]) if keys is not None
                   else self.shard_key(vm, chunk[i][1], batch[i]))
            if winner is None or key < winner_key - tol:
                winner, winner_key = chunk[i][1], key
                winner_ordinal = chunk[i][0]
        return ShardScan(winner=winner, key=winner_key,
                         ordinal=winner_ordinal, evaluated=len(chunk),
                         admissible=int(rows.size))

    def shard_keys(self, vm: VM,
                   batch: FeasibilityBatch) -> np.ndarray | None:
        """Vectorized :meth:`shard_key` over a probe batch (score mode).

        ``None`` (the default) makes the kernel shard scan fall back to
        per-candidate :meth:`shard_key` calls on lazily materialized
        verdicts; score-mode allocators whose key derives from the
        batch arrays override this to stay fully vectorized.
        """
        return None

    def _reduce_shards(self, vm: VM,
                       scans: Sequence[ShardScan]) -> ServerState | None:
        """Deterministic fold of the per-shard scans, in shard order.

        * ``collect``: concatenate the shard-local feasible lists —
          shard chunks preserve scan order and shards partition the
          fleet contiguously, so the concatenation *is* the sequential
          feasible list — then delegate to :meth:`choose`.
        * ``first``: the smallest scan ordinal among shard winners, i.e.
          exactly the server the sequential scan would have stopped at.
        * ``score``: fold shard winners in ascending shard (= ordinal)
          order, displacing the incumbent only on a strict improvement
          beyond :attr:`_shard_tie_tol` — ties keep the earlier scan
          position, matching the sequential incumbent rule.
        """
        if self.scan_mode == "collect":
            feasible = [state for scan in scans for state in scan.feasible]
            if not feasible:
                return None
            return self.choose(vm, feasible)
        best: ServerState | None = None
        best_key = math.inf
        best_ordinal = -1
        if self.scan_mode == "first":
            for scan in scans:
                if scan.winner is None:
                    continue
                if best is None or scan.ordinal < best_ordinal:
                    best, best_ordinal = scan.winner, scan.ordinal
        else:
            tol = self._shard_tie_tol
            for scan in scans:
                if scan.winner is None:
                    continue
                if best is None or scan.key < best_key - tol:
                    best, best_key, best_ordinal = \
                        scan.winner, scan.key, scan.ordinal
        if best is not None:
            self._on_sharded_select(vm, best, best_ordinal)
        return best

    def shard_key(self, vm: VM, state: ServerState,
                  verdict: Feasibility) -> float:
        """Score-mode ranking key (lower wins) for one admissible
        candidate; score-mode subclasses must override. ``verdict`` is
        the probe result, so interval peaks come for free."""
        raise NotImplementedError(
            f"{type(self).__name__} uses scan_mode='score' but does not "
            f"implement shard_key()")

    def _on_sharded_select(self, vm: VM, state: ServerState,
                           ordinal: int) -> None:
        """Hook run once per sharded selection with the winning state
        and its scan ordinal — stateful scan orders (round robin)
        update their cursor here, exactly as their sequential scan
        would."""

    @abc.abstractmethod
    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        """Select the server for ``vm`` among the feasible candidates.

        ``feasible`` is non-empty and preserves the fleet's id order.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
