"""Static energy-efficiency ordering (ablation of the paper's heuristic).

Scans servers in ascending watts-per-compute-unit at peak load and places
each VM on the first feasible one. This captures *only* the "prefer
efficient servers" effect of the paper's rule — no incremental Eq.-17
evaluation, so it cannot weigh consolidation against wake-up costs. The gap
between this allocator and :class:`MinIncrementalEnergy` measures the value
of the incremental-cost computation itself (DESIGN.md ablation 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["PowerAwareFirstFit"]


class PowerAwareFirstFit(Allocator):
    """First fit over servers sorted by peak watts per compute unit."""

    name = "power-aware"

    #: First fit over the efficiency-sorted order; the sharded
    #: reduction keeps the smallest sorted-scan ordinal.
    scan_mode = "first"

    def on_prepare(self, states: Sequence[ServerState]) -> None:
        self._scan = sorted(
            states,
            key=lambda st: (st.server.p_peak / st.server.cpu_capacity,
                            st.server.server_id))
        #: the sorted order as fleet positions, for the kernel walk
        pos_of = {id(st): i for i, st in enumerate(states)}
        self._scan_pos = np.fromiter(
            (pos_of[id(st)] for st in self._scan), dtype=np.intp)

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: peak watts per compute unit."""
        return state.server.p_peak / state.server.cpu_capacity

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        kernel = self._kernel_for(states)
        if kernel is not None:
            positions = self._scan_pos
            mask = self._index.admitted_mask(vm)
            if mask is not None:
                positions = positions[mask[positions]]
            i = self._kernel_first(vm, kernel, positions)
            return None if i is None \
                else kernel.state_at(int(positions[i]))
        admits = self._spec_admits(vm, states)
        for state in self._scan:
            if admits is not None and not admits[id(state.server.spec)]:
                continue
            if self._examine(vm, state) is not None:
                return state
        return None

    def _scan_sequence(self, vm: VM, states: Sequence[ServerState]
                       ) -> list[tuple[int, ServerState]]:
        """The efficiency-sorted scan with its ordinals, pruned."""
        admits = self._spec_admits(vm, states)
        if admits is None:
            return list(enumerate(self._scan))
        return [(i, state) for i, state in enumerate(self._scan)
                if admits[id(state.server.spec)]]

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        ranks = {id(st): i for i, st in enumerate(self._scan)}
        return min(feasible, key=lambda st: ranks[id(st)])
