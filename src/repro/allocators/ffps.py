"""First Fit Power Saving — the paper's baseline (Sec. IV-A).

VMs are allocated in increasing order of their starting time; the servers
are put in one **random order** at the start of the run, and each VM goes to
the first server in that order with sufficient spare CPU and memory
throughout the VM's time duration. After all VMs are placed, servers sleep
through idle segments whenever the transition cost is below the idle power
cost — the same Eq.-17 accounting applied to every algorithm.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["FirstFitPowerSaving"]


class FirstFitPowerSaving(Allocator):
    """The paper's FFPS baseline: first fit over randomly ordered servers."""

    name = "ffps"

    #: First fit over the shuffled order; the sharded reduction keeps
    #: the smallest shuffled-scan ordinal, i.e. the sequential winner.
    scan_mode = "first"

    def on_prepare(self, states: Sequence[ServerState]) -> None:
        order = self._rng.permutation(len(states))
        self._scan = [states[i] for i in order]
        self._rank = {id(st): i for i, st in enumerate(self._scan)}
        #: the shuffled order as fleet positions (the permutation
        #: itself), for the batch-kernel first-fit walk
        self._scan_pos = order.astype(np.intp)

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: position in the shuffled scan order."""
        return float(self._rank[id(state)])

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        kernel = self._kernel_for(states)
        if kernel is not None:
            positions = self._scan_pos
            mask = self._index.admitted_mask(vm)
            if mask is not None:
                positions = positions[mask[positions]]
            i = self._kernel_first(vm, kernel, positions)
            return None if i is None \
                else kernel.state_at(int(positions[i]))
        admits = self._spec_admits(vm, states)
        for state in self._scan:
            if admits is not None and not admits[id(state.server.spec)]:
                continue
            if self._examine(vm, state) is not None:
                return state
        return None

    def _scan_sequence(self, vm: VM, states: Sequence[ServerState]
                       ) -> list[tuple[int, ServerState]]:
        """The shuffled scan with its ordinals, statically pruned."""
        admits = self._spec_admits(vm, states)
        if admits is None:
            return list(enumerate(self._scan))
        return [(i, state) for i, state in enumerate(self._scan)
                if admits[id(state.server.spec)]]

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        # _select() short-circuits; kept for interface completeness.
        ranks = {id(st): i for i, st in enumerate(self._scan)}
        return min(feasible, key=lambda st: ranks[id(st)])
