"""Best fit: tightest residual capacity during the VM's interval.

A classic bin-packing comparator adapted to the interval setting: the score
of a candidate server is the normalized spare capacity that would remain at
the *most loaded* time unit of the VM's interval after placement, summed
over CPU and memory. Best fit picks the smallest score (tightest packing),
consolidating load without looking at power parameters — a useful contrast
against the paper's energy-aware rule.
"""

from __future__ import annotations

from typing import Sequence

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM

__all__ = ["BestFit", "residual_score"]


def residual_score(state: ServerState, vm: VM) -> float:
    """Normalized spare (cpu + memory) left at the interval's peak load."""
    peak_cpu, peak_mem = state.peak_usage(vm.interval)
    spec = state.server.spec
    spare_cpu = (spec.cpu_capacity - peak_cpu - vm.cpu) / spec.cpu_capacity
    spare_mem = ((spec.memory_capacity - peak_mem - vm.memory)
                 / spec.memory_capacity)
    return spare_cpu + spare_mem


class BestFit(Allocator):
    """Pick the feasible server where the VM fits most tightly."""

    name = "best-fit"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: residual spare capacity (lower = tighter)."""
        return residual_score(state, vm)

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return min(feasible, key=lambda st: residual_score(st, vm))
