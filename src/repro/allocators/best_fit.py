"""Best fit: tightest residual capacity during the VM's interval.

A classic bin-packing comparator adapted to the interval setting: the score
of a candidate server is the normalized spare capacity that would remain at
the *most loaded* time unit of the VM's interval after placement, summed
over CPU and memory. Best fit picks the smallest score (tightest packing),
consolidating load without looking at power parameters — a useful contrast
against the paper's energy-aware rule.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.allocators.base import Allocator
from repro.allocators.state import ServerState
from repro.model.vm import VM
from repro.placement.feasibility import Feasibility
from repro.placement.kernels import FeasibilityBatch

__all__ = ["BestFit", "residual_score"]


def _residual(spec, verdict: Feasibility, vm: VM) -> float:
    spare_cpu = (spec.cpu_capacity - verdict.peak_cpu - vm.cpu) \
        / spec.cpu_capacity
    spare_mem = (spec.memory_capacity - verdict.peak_mem - vm.memory) \
        / spec.memory_capacity
    return spare_cpu + spare_mem


def _residuals(batch: FeasibilityBatch, vm: VM) -> np.ndarray:
    """Vectorized :func:`_residual` over a probe batch.

    ``headroom = cap - peak`` in the batch, so ``(headroom - vm) / cap``
    applies the identical left-associated float64 operations the scalar
    expression does — bit-identical scores.
    """
    return (batch.headroom_cpu - vm.cpu) / batch.cpu_cap \
        + (batch.headroom_mem - vm.memory) / batch.mem_cap


def residual_score(state: ServerState, vm: VM) -> float:
    """Normalized spare (cpu + memory) left at the interval's peak load."""
    return _residual(state.server.spec, state.probe(vm), vm)


class BestFit(Allocator):
    """Pick the feasible server where the VM fits most tightly."""

    name = "best-fit"

    #: Sharded scans keep the shard-local tightest fit; the fold's
    #: strict-improvement rule reproduces the sequential first-wins
    #: tie-break exactly (the score comparison is associative).
    scan_mode = "score"

    def candidate_score(self, vm: VM, state: ServerState) -> float | None:
        """Explain-trace score: residual spare capacity (lower = tighter)."""
        return residual_score(state, vm)

    def shard_key(self, vm: VM, state: ServerState,
                  verdict: Feasibility) -> float:
        return _residual(state.server.spec, verdict, vm)

    def shard_keys(self, vm: VM, batch: FeasibilityBatch) -> np.ndarray:
        return _residuals(batch, vm)

    def _select(self, vm: VM,
                states: Sequence[ServerState]) -> ServerState | None:
        batch = self._probe_candidates(vm, states)
        if batch is not None:
            rows = self._admissible_rows(vm, batch)
            if not rows.size:
                return None
            # argmin returns the first minimum, matching the scalar
            # strict-< incumbent walk's first-wins tie-break.
            pick = rows[int(np.argmin(_residuals(batch, vm)[rows]))]
            return batch.state_at(int(pick))
        # The probe verdict already carries the interval peaks, so scoring
        # is free: one pass, no second peak query per candidate.
        best: ServerState | None = None
        best_score = math.inf
        for state in self._candidates(vm, states):
            verdict = self._examine(vm, state)
            if verdict is None:
                continue
            score = _residual(state.server.spec, verdict, vm)
            if score < best_score:
                best = state
                best_score = score
        return best

    def choose(self, vm: VM, feasible: Sequence[ServerState]) -> ServerState:
        return min(feasible, key=lambda st: residual_score(st, vm))
