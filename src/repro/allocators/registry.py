"""Name -> allocator registry used by the CLI and experiment harness."""

from __future__ import annotations

from typing import Type

from repro.allocators.base import Allocator
from repro.allocators.best_fit import BestFit
from repro.allocators.ffps import FirstFitPowerSaving
from repro.allocators.first_fit import FirstFit
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.power_aware import PowerAwareFirstFit
from repro.allocators.random_fit import RandomFit
from repro.allocators.round_robin import RoundRobin
from repro.allocators.worst_fit import WorstFit
from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError

__all__ = ["ALLOCATORS", "make_allocator", "allocator_names"]

ALLOCATORS: dict[str, Type[Allocator]] = {
    cls.name: cls
    for cls in (
        MinIncrementalEnergy,
        FirstFitPowerSaving,
        FirstFit,
        BestFit,
        WorstFit,
        RandomFit,
        RoundRobin,
        PowerAwareFirstFit,
    )
}


def allocator_names() -> list[str]:
    """All registered algorithm names, sorted."""
    return sorted(ALLOCATORS)


def make_allocator(name: str, seed: int | None = None,
                   policy: SleepPolicy = SleepPolicy.OPTIMAL) -> Allocator:
    """Instantiate a registered allocator by name."""
    try:
        cls = ALLOCATORS[name]
    except KeyError:
        raise ValidationError(
            f"unknown allocator {name!r}; available: {allocator_names()}"
        ) from None
    return cls(seed=seed, policy=policy)
