"""Name -> allocator registry and the construction API.

:func:`make_allocator` is the one way to build an allocator from
configuration (CLI flags, service config, experiment harnesses): it looks
the class up by its registered name and forwards arbitrary keyword
parameters to the constructor, validating both against the registry so a
typo fails fast with the valid choices spelled out — as a typed
:class:`~repro.exceptions.AllocatorConfigError` — instead of surfacing as
a bare ``TypeError`` deep in a run.
"""

from __future__ import annotations

import inspect
from typing import Any, Type

from repro.allocators.base import Allocator
from repro.allocators.best_fit import BestFit
from repro.allocators.ffps import FirstFitPowerSaving
from repro.allocators.first_fit import FirstFit
from repro.allocators.gamma_ff import GammaFF
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.allocators.power_aware import PowerAwareFirstFit
from repro.allocators.random_fit import RandomFit
from repro.allocators.round_robin import RoundRobin
from repro.allocators.worst_fit import WorstFit
from repro.energy.cost import SleepPolicy
from repro.exceptions import AllocatorConfigError, ValidationError
from repro.placement.config import EngineConfig

__all__ = ["ALLOCATORS", "make_allocator", "allocator_names"]

ALLOCATORS: dict[str, Type[Allocator]] = {
    cls.name: cls
    for cls in (
        MinIncrementalEnergy,
        FirstFitPowerSaving,
        FirstFit,
        BestFit,
        WorstFit,
        RandomFit,
        RoundRobin,
        PowerAwareFirstFit,
        GammaFF,
    )
}


def allocator_names() -> list[str]:
    """All registered algorithm names, sorted."""
    return sorted(ALLOCATORS)


def _accepted_params(cls: Type[Allocator]) -> list[str]:
    """Keyword parameters ``cls`` accepts (the whole __init__ chain)."""
    return [p.name for p in inspect.signature(cls).parameters.values()
            if p.kind in (inspect.Parameter.KEYWORD_ONLY,
                          inspect.Parameter.POSITIONAL_OR_KEYWORD)]


def make_allocator(name: str, **params: Any) -> Allocator:
    """Instantiate a registered allocator by name.

    All keyword ``params`` are forwarded to the constructor; common ones
    (``seed``, ``policy``, ``engine``) are accepted by every algorithm,
    and extensions may add their own. ``policy`` may be given as the
    :class:`SleepPolicy` value string (e.g. ``"never-sleep"``) and
    ``engine`` as an :class:`EngineConfig` spec string (e.g.
    ``"dense"``, ``"indexed:kernel=off"``) — this is the sanctioned
    string entry point for CLIs and config files, so no deprecation
    fires here.

    Raises
    ------
    AllocatorConfigError
        For an unknown ``name`` or a parameter the allocator does not
        accept; the message lists the valid choices.
    """
    try:
        cls = ALLOCATORS[name]
    except KeyError:
        raise AllocatorConfigError(
            f"unknown allocator {name!r}; available: {allocator_names()}"
        ) from None
    policy = params.get("policy")
    if isinstance(policy, str):
        try:
            params["policy"] = SleepPolicy(policy)
        except ValueError:
            raise AllocatorConfigError(
                f"unknown sleep policy {policy!r}; valid policies: "
                f"{[p.value for p in SleepPolicy]}") from None
    engine = params.get("engine")
    if isinstance(engine, str):
        try:
            params["engine"] = EngineConfig.parse(engine)
        except ValidationError as exc:
            raise AllocatorConfigError(str(exc)) from None
    accepted = _accepted_params(cls)
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise AllocatorConfigError(
            f"allocator {name!r} does not accept parameter(s) "
            f"{unknown}; accepted: {sorted(accepted)}")
    return cls(**params)
