"""Temporal conflict analysis of workloads.

Two VMs *conflict* when their intervals overlap — they can share a server
only if its capacity covers both simultaneously. The conflict graph (VMs
as nodes, overlaps as edges) is an **interval graph**, so its clique
number equals the maximum number of simultaneously-live VMs and is
computable exactly by a sweep, no NP-hard machinery needed. The graph and
the sweep feed the lower bounds in :mod:`repro.analysis.bounds` and the
workload statistics the examples report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.model.phases import demand_profile
from repro.model.vm import VM

__all__ = ["ConcurrencyProfile", "conflict_graph", "concurrency_profile",
           "peak_demand"]


def conflict_graph(vms: Sequence[VM]) -> nx.Graph:
    """The interval conflict graph of a workload.

    Nodes are VM ids (with the VM stored as a ``vm`` node attribute);
    edges join temporally overlapping VMs. Built by a sweep over interval
    endpoints, O(m log m + E).
    """
    graph = nx.Graph()
    for vm in vms:
        graph.add_node(vm.vm_id, vm=vm)
    ordered = sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))
    live: list[VM] = []
    for vm in ordered:
        live = [other for other in live if other.end >= vm.start]
        for other in live:
            graph.add_edge(other.vm_id, vm.vm_id)
        live.append(vm)
    return graph


@dataclass(frozen=True)
class ConcurrencyProfile:
    """Sweep results: how much runs at once, and when."""

    max_concurrent: int
    peak_time: int
    peak_cpu: float
    peak_cpu_time: int
    peak_memory: float
    peak_memory_time: int

    @property
    def is_sequential(self) -> bool:
        """Whether no two VMs ever overlap."""
        return self.max_concurrent <= 1


def concurrency_profile(vms: Sequence[VM]) -> ConcurrencyProfile:
    """Exact concurrency and resource peaks via an endpoint sweep.

    For interval graphs the maximum clique is the maximum number of
    intervals covering one point, so ``max_concurrent`` is also the
    conflict graph's clique number.
    """
    if not vms:
        return ConcurrencyProfile(0, 0, 0.0, 0, 0.0, 0)
    # +1 at start, -1 just past end (closed intervals).
    events: dict[int, list[float]] = {}
    for vm in vms:
        start_delta = events.setdefault(vm.start, [0, 0.0, 0.0])
        start_delta[0] += 1
        end_delta = events.setdefault(vm.end + 1, [0, 0.0, 0.0])
        end_delta[0] -= 1
        for piece, cpu, memory in demand_profile(vm):
            start_delta = events.setdefault(piece.start, [0, 0.0, 0.0])
            start_delta[1] += cpu
            start_delta[2] += memory
            end_delta = events.setdefault(piece.end + 1, [0, 0.0, 0.0])
            end_delta[1] -= cpu
            end_delta[2] -= memory
    count = 0
    cpu = 0.0
    mem = 0.0
    max_count, count_t = 0, 0
    max_cpu, cpu_t = 0.0, 0
    max_mem, mem_t = 0.0, 0
    for t in sorted(events):
        d_count, d_cpu, d_mem = events[t]
        count += int(d_count)
        cpu += d_cpu
        mem += d_mem
        if count > max_count:
            max_count, count_t = count, t
        if cpu > max_cpu + 1e-12:
            max_cpu, cpu_t = cpu, t
        if mem > max_mem + 1e-12:
            max_mem, mem_t = mem, t
    return ConcurrencyProfile(
        max_concurrent=max_count, peak_time=count_t,
        peak_cpu=max_cpu, peak_cpu_time=cpu_t,
        peak_memory=max_mem, peak_memory_time=mem_t)


def peak_demand(vms: Sequence[VM]) -> tuple[float, float]:
    """Peak simultaneous (cpu, memory) demand of a workload."""
    profile = concurrency_profile(vms)
    return profile.peak_cpu, profile.peak_memory
