"""Fleet sizing: how many servers does a workload actually need?

Two complementary tools:

* :func:`minimum_feasible_size` — the smallest fleet (built by a cluster
  factory) on which an allocator can place the whole workload, found by
  binary search over the fleet size. Feasibility is monotone in size for
  the library's cluster builders (growing the fleet only appends
  servers), which makes bisection sound for a *fixed* allocator order.
* :func:`sizing_curve` — energy as a function of fleet size, revealing
  the knee where extra servers stop buying anything (consolidating
  allocators use few servers regardless, so the curve flattens fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.allocators.base import Allocator
from repro.allocators.min_energy import MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.exceptions import AllocationError, ValidationError
from repro.model.cluster import Cluster
from repro.model.vm import VM

__all__ = ["SizingPoint", "minimum_feasible_size", "sizing_curve"]

ClusterFactory = Callable[[int], Cluster]


@dataclass(frozen=True)
class SizingPoint:
    """One fleet size with its outcome."""

    size: int
    feasible: bool
    energy: float | None
    servers_used: int | None


def _attempt(vms: Sequence[VM], factory: ClusterFactory, size: int,
             allocator: Allocator) -> SizingPoint:
    cluster = factory(size)
    try:
        allocation = allocator.allocate(vms, cluster)
    except AllocationError:
        return SizingPoint(size=size, feasible=False, energy=None,
                           servers_used=None)
    return SizingPoint(
        size=size, feasible=True,
        energy=allocation_cost(allocation).total,
        servers_used=len(allocation.used_servers()))


def minimum_feasible_size(vms: Iterable[VM],
                          factory: ClusterFactory | None = None,
                          allocator: Allocator | None = None,
                          upper: int = 4096) -> int:
    """Smallest fleet size on which ``allocator`` places every VM.

    Doubles up from 1 to find a feasible size, then bisects down.
    Raises :class:`ValidationError` when even ``upper`` servers do not
    suffice.
    """
    vms = list(vms)
    if not vms:
        return 0
    if upper < 1:
        raise ValidationError(f"upper must be >= 1, got {upper}")
    factory = factory or Cluster.paper_all_types
    allocator = allocator or MinIncrementalEnergy()
    hi = 1
    while hi <= upper and not _attempt(vms, factory, hi,
                                       allocator).feasible:
        hi *= 2
    if hi > upper:
        if not _attempt(vms, factory, upper, allocator).feasible:
            raise ValidationError(
                f"workload infeasible even on {upper} servers")
        hi = upper
    lo = max(1, hi // 2)
    while lo < hi:
        mid = (lo + hi) // 2
        if _attempt(vms, factory, mid, allocator).feasible:
            hi = mid
        else:
            lo = mid + 1
    return hi


def sizing_curve(vms: Iterable[VM], sizes: Sequence[int],
                 factory: ClusterFactory | None = None,
                 allocator: Allocator | None = None) -> list[SizingPoint]:
    """Energy and feasibility at each candidate fleet size."""
    vms = list(vms)
    if not sizes:
        raise ValidationError("sizes must be non-empty")
    factory = factory or Cluster.paper_all_types
    allocator = allocator or MinIncrementalEnergy()
    return [_attempt(vms, factory, size, allocator) for size in sizes]
