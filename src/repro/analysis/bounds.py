"""Fast combinatorial lower bounds on total energy.

The LP relaxation (:mod:`repro.ilp.relaxation`) gives a tight bound but
builds the full time-expanded model; these bounds are O(m log m) and work
at any scale, so examples and benches can sanity-check plans instantly.

Two additive components, both valid for *any* feasible plan:

* **run bound** — every VM pays at least its cheapest feasible ``W_ij``
  (Eq. 3 on the server type minimising ``P^1``);
* **idle bound** — at each time unit, the CPU demand ``D(t)`` must be
  hosted on active servers; the idle power spent at ``t`` is therefore at
  least ``D(t) * min_i (P_idle_i / C^CPU_i)`` (the fleet's best idle
  watts per compute unit), and symmetrically for memory. The larger of
  the two per-unit bounds applies.

The sum lower-bounds the objective because run energy and active-server
idle energy are disjoint cost components. Wake-up costs are ignored
(they only increase energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ValidationError
from repro.model.cluster import Cluster
from repro.model.phases import demand_profile
from repro.model.vm import VM

__all__ = ["EnergyLowerBound", "energy_lower_bound"]


@dataclass(frozen=True)
class EnergyLowerBound:
    """A quick combinatorial lower bound and its components."""

    run: float
    idle: float

    @property
    def total(self) -> float:
        return self.run + self.idle

    def gap_of(self, cost: float) -> float:
        """Relative gap of a plan's cost above this bound."""
        if self.total <= 0:
            return float("inf")
        return (cost - self.total) / self.total


def energy_lower_bound(vms: Sequence[VM],
                       cluster: Cluster) -> EnergyLowerBound:
    """Compute the run + idle lower bound for a workload on a fleet."""
    if not vms:
        return EnergyLowerBound(run=0.0, idle=0.0)
    specs = {server.spec.name: server.spec for server in cluster}.values()

    run = 0.0
    for vm in vms:
        feasible = [spec.power_per_cpu_unit for spec in specs
                    if vm.cpu <= spec.cpu_capacity
                    and vm.memory <= spec.memory_capacity]
        if not feasible:
            raise ValidationError(
                f"{vm} fits no server type in the fleet")
        run += min(feasible) * vm.cpu_time

    idle_per_cpu = min(spec.p_idle / spec.cpu_capacity for spec in specs)
    idle_per_mem = min(spec.p_idle / spec.memory_capacity
                       for spec in specs)
    # Sweep the aggregate demand profile; each time unit contributes the
    # stronger of the CPU- and memory-implied idle floors.
    events: dict[int, list[float]] = {}
    for vm in vms:
        for piece, cpu, memory in demand_profile(vm):
            start = events.setdefault(piece.start, [0.0, 0.0])
            start[0] += cpu
            start[1] += memory
            end = events.setdefault(piece.end + 1, [0.0, 0.0])
            end[0] -= cpu
            end[1] -= memory
    idle = 0.0
    cpu = 0.0
    mem = 0.0
    times = sorted(events)
    for t, t_next in zip(times, times[1:] + [times[-1]]):
        d_cpu, d_mem = events[t]
        cpu += d_cpu
        mem += d_mem
        span = t_next - t
        if span <= 0:
            continue
        floor = max(cpu * idle_per_cpu, mem * idle_per_mem)
        idle += floor * span
    return EnergyLowerBound(run=run, idle=idle)
