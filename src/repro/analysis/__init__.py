"""Workload analysis: conflict graphs, concurrency sweeps, energy bounds."""

from repro.analysis.bounds import EnergyLowerBound, energy_lower_bound
from repro.analysis.diagnostics import PlanDiagnostics, diagnose
from repro.analysis.sizing import (
    SizingPoint,
    minimum_feasible_size,
    sizing_curve,
)
from repro.analysis.conflicts import (
    ConcurrencyProfile,
    concurrency_profile,
    conflict_graph,
    peak_demand,
)

__all__ = [
    "EnergyLowerBound",
    "PlanDiagnostics",
    "diagnose",
    "energy_lower_bound",
    "ConcurrencyProfile",
    "concurrency_profile",
    "conflict_graph",
    "peak_demand",
    "SizingPoint",
    "minimum_feasible_size",
    "sizing_curve",
]
