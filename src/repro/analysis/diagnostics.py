"""Plan diagnostics: *why* does a plan cost what it costs?

Aggregate energy hides structure. These diagnostics decompose a finished
allocation into the quantities an operator would audit:

* how VMs and energy distribute over server types;
* load imbalance across used servers (Gini coefficient of per-server
  energy);
* stranded capacity — CPU left idle on active servers because *memory*
  ran out first (and vice versa), the signature of a mis-matched fleet;
* consolidation quality — VMs per used server, active time share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.energy.accounting import energy_report
from repro.energy.cost import SleepPolicy
from repro.metrics.utilization import server_profiles
from repro.model.allocation import Allocation

__all__ = ["PlanDiagnostics", "diagnose"]


@dataclass(frozen=True)
class TypeUsage:
    """How one server type participates in a plan."""

    servers_used: int
    vms: int
    energy: float


@dataclass(frozen=True)
class PlanDiagnostics:
    """Structural audit of one allocation."""

    total_energy: float
    servers_used: int
    vms: int
    by_type: Mapping[str, TypeUsage]
    energy_gini: float
    stranded_cpu_ratio: float
    stranded_memory_ratio: float
    vms_per_used_server: float

    def format(self) -> str:
        lines = [
            f"energy: {self.total_energy:.0f} over "
            f"{self.servers_used} servers, {self.vms} VMs "
            f"({self.vms_per_used_server:.1f} VMs/server)",
            f"energy gini across used servers: {self.energy_gini:.2f}",
            f"stranded capacity: {100 * self.stranded_cpu_ratio:.0f}% cpu, "
            f"{100 * self.stranded_memory_ratio:.0f}% memory",
            "by server type:",
        ]
        for name, usage in sorted(self.by_type.items()):
            lines.append(
                f"  {name:8s} {usage.servers_used:4d} servers "
                f"{usage.vms:5d} VMs {usage.energy:12.0f}")
        return "\n".join(lines)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = even, 1 = one
    server carries everything)."""
    if values.size == 0:
        return 0.0
    total = float(values.sum())
    if total <= 0:
        return 0.0
    ordered = np.sort(values)
    n = ordered.size
    cumulative = np.cumsum(ordered)
    return float((n + 1 - 2 * (cumulative / total).sum()) / n)


def diagnose(allocation: Allocation, *,
             policy: SleepPolicy = SleepPolicy.OPTIMAL) -> PlanDiagnostics:
    """Compute the structural audit of ``allocation``."""
    report = energy_report(allocation, policy=policy)
    by_type: dict[str, dict] = {}
    energies = []
    stranded_cpu = 0.0
    stranded_mem = 0.0
    offered_cpu = 0.0
    offered_mem = 0.0
    for server_report in report.servers:
        server = allocation.cluster.server(server_report.server_id)
        entry = by_type.setdefault(
            server_report.spec_name,
            {"servers_used": 0, "vms": 0, "energy": 0.0})
        entry["servers_used"] += 1
        entry["vms"] += server_report.vm_count
        entry["energy"] += server_report.cost.total
        energies.append(server_report.cost.total)
        cpu, mem = server_profiles(allocation, server_report.server_id)
        busy = cpu > 0
        # stranded = spare resource during busy units, weighted by how
        # full the *other* resource is (spare room that cannot be sold
        # because its partner resource is the bottleneck).
        busy_units = int(busy.sum())
        if busy_units:
            spare_cpu = server.cpu_capacity - cpu[busy]
            spare_mem = server.memory_capacity - mem[busy]
            mem_full = mem[busy] / server.memory_capacity
            cpu_full = cpu[busy] / server.cpu_capacity
            stranded_cpu += float((spare_cpu * mem_full).sum())
            stranded_mem += float((spare_mem * cpu_full).sum())
            offered_cpu += server.cpu_capacity * busy_units
            offered_mem += server.memory_capacity * busy_units
    return PlanDiagnostics(
        total_energy=report.total_energy,
        servers_used=report.servers_used,
        vms=len(allocation),
        by_type={name: TypeUsage(**entry)
                 for name, entry in by_type.items()},
        energy_gini=_gini(np.array(energies)),
        stranded_cpu_ratio=(stranded_cpu / offered_cpu
                            if offered_cpu else 0.0),
        stranded_memory_ratio=(stranded_mem / offered_mem
                               if offered_mem else 0.0),
        vms_per_used_server=(len(allocation) / report.servers_used
                             if report.servers_used else 0.0),
    )
