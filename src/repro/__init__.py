"""Energy-saving virtual machine allocation in cloud data centers.

A full reproduction of *Xie, Jia, Yang, Zhang — "Energy Saving Virtual
Machine Allocation in Cloud Computing", IEEE ICDCS Workshops 2013*: the
minimum-incremental-energy allocation heuristic, the FFPS baseline, the
exact boolean-ILP formulation, the energy model (affine power curves,
busy/idle segments, transition costs), a Poisson workload generator, a
discrete-event replay simulator, and the harness regenerating every table
and figure of the paper's evaluation.

Quickstart::

    from repro import Cluster, MinIncrementalEnergy, generate_vms
    from repro import allocation_cost

    vms = generate_vms(100, mean_interarrival=4.0, seed=0)
    cluster = Cluster.paper_all_types(50)
    plan = MinIncrementalEnergy().allocate(vms, cluster)
    print(allocation_cost(plan).total)
"""

from repro.allocators import (
    Allocator,
    BestFit,
    Decision,
    FirstFit,
    FirstFitPowerSaving,
    MinIncrementalEnergy,
    PowerAwareFirstFit,
    RandomFit,
    RoundRobin,
    WorstFit,
    allocator_names,
    make_allocator,
)
from repro.energy import (
    CostBreakdown,
    EnergyReport,
    SleepPolicy,
    allocation_cost,
    energy_report,
    run_energy,
)
from repro.exceptions import (
    AllocationError,
    AllocatorConfigError,
    CapacityError,
    OverloadedError,
    ProtocolVersionError,
    ReproError,
    RetryableError,
    ServiceError,
    SimulationError,
    SolverError,
    TransportError,
    UnknownOperationError,
    ValidationError,
)
from repro.placement import (
    CandidateIndex,
    DenseOccupancy,
    Feasibility,
    ShardedFleet,
    SkylineOccupancy,
)
from repro.analysis import (
    concurrency_profile,
    conflict_graph,
    energy_lower_bound,
)
from repro.consolidation import (
    ConsolidationReport,
    FragmentationMonitor,
    MigrationPlanner,
    PlannedMove,
    VictimSelector,
)
from repro.experiments import ScenarioConfig, compare_averaged
from repro.extensions import (
    EpochConsolidator,
    LongestFirstMinEnergy,
    OfflineMinEnergy,
    SuperlinearPowerModel,
    evaluate_under_model,
)
from repro.ilp import RecedingHorizonSolver, solve_ilp, solve_relaxation
from repro.metrics import (
    energy_reduction_ratio,
    linear_fit,
    logarithmic_fit,
    utilization_stats,
)
from repro.model import (
    VM,
    DemandPhase,
    PhasedVM,
    Allocation,
    Cluster,
    PlacementConstraints,
    Server,
    ServerSpec,
    TimeInterval,
    VMSpec,
    server_type,
    vm_type,
)
from repro.obs import (
    CandidateVerdict,
    CostTerms,
    ExplainRecorder,
    PlacementExplanation,
    Tracer,
    format_decision_table,
    get_tracer,
    set_tracer,
    to_chrome_trace,
    use_tracer,
    write_chrome_trace,
)
from repro.results import STATUSES, PlacementResult
from repro.service import (
    SUPPORTED_VERSIONS,
    AllocationClient,
    AllocationDaemon,
    ClientConfig,
    ClusterStateStore,
    DaemonClient,
    ReplaySummary,
    consolidate_request,
    place_batch_request,
    replay_trace,
)
from repro.simulation import SimulationEngine, simulate_online
from repro.workload import (
    BurstyWorkload,
    PhasedWorkload,
    DiurnalWorkload,
    HeavyTailWorkload,
    PoissonWorkload,
    Trace,
    generate_vms,
)

__version__ = "1.0.0"

__all__ = [
    "Allocator",
    "BestFit",
    "Decision",
    "FirstFit",
    "FirstFitPowerSaving",
    "MinIncrementalEnergy",
    "PowerAwareFirstFit",
    "RandomFit",
    "RoundRobin",
    "WorstFit",
    "allocator_names",
    "make_allocator",
    "CostBreakdown",
    "EnergyReport",
    "SleepPolicy",
    "allocation_cost",
    "energy_report",
    "run_energy",
    "AllocationError",
    "AllocatorConfigError",
    "CapacityError",
    "OverloadedError",
    "ProtocolVersionError",
    "ReproError",
    "RetryableError",
    "ServiceError",
    "SimulationError",
    "SolverError",
    "TransportError",
    "UnknownOperationError",
    "ValidationError",
    "CandidateIndex",
    "DenseOccupancy",
    "Feasibility",
    "ShardedFleet",
    "SkylineOccupancy",
    "ScenarioConfig",
    "compare_averaged",
    "ConsolidationReport",
    "FragmentationMonitor",
    "MigrationPlanner",
    "PlannedMove",
    "VictimSelector",
    "EpochConsolidator",
    "LongestFirstMinEnergy",
    "OfflineMinEnergy",
    "SuperlinearPowerModel",
    "evaluate_under_model",
    "RecedingHorizonSolver",
    "solve_ilp",
    "solve_relaxation",
    "concurrency_profile",
    "conflict_graph",
    "energy_lower_bound",
    "energy_reduction_ratio",
    "linear_fit",
    "logarithmic_fit",
    "utilization_stats",
    "VM",
    "DemandPhase",
    "PhasedVM",
    "Allocation",
    "Cluster",
    "PlacementConstraints",
    "Server",
    "ServerSpec",
    "TimeInterval",
    "VMSpec",
    "server_type",
    "vm_type",
    "CandidateVerdict",
    "CostTerms",
    "ExplainRecorder",
    "PlacementExplanation",
    "Tracer",
    "format_decision_table",
    "get_tracer",
    "set_tracer",
    "to_chrome_trace",
    "use_tracer",
    "write_chrome_trace",
    "AllocationClient",
    "AllocationDaemon",
    "ClientConfig",
    "ClusterStateStore",
    "DaemonClient",
    "PlacementResult",
    "ReplaySummary",
    "STATUSES",
    "SUPPORTED_VERSIONS",
    "consolidate_request",
    "place_batch_request",
    "replay_trace",
    "SimulationEngine",
    "simulate_online",
    "BurstyWorkload",
    "DiurnalWorkload",
    "HeavyTailWorkload",
    "PhasedWorkload",
    "PoissonWorkload",
    "Trace",
    "generate_vms",
    "__version__",
]
