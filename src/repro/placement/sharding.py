"""Sharded fleet views: partitioned scan fan-out with a deterministic fold.

A :class:`ShardedFleet` wraps a fleet's server-state list and partitions
it into ``K`` contiguous shards. Allocators fan their feasibility scan
out across the shards (:meth:`ShardedFleet.map_scans` runs one task per
non-empty shard on a shared thread pool) and then *reduce* the per-shard
winners with a deterministic tie-break, so sharded selection returns
bit-identical results to the sequential scan — see
:meth:`repro.allocators.base.Allocator.select_sharded` for the fold
rules per scan mode.

Concurrency model
-----------------
* Each shard owns a contiguous range of fleet positions and one
  :class:`threading.Lock`; a shard-scan task holds its shard's lock for
  the duration of the probe sweep, and writers (the service's commit
  path) take :meth:`lock_for` on the mutated server, so probes never
  observe a half-applied placement.
* ``ServerState.probe`` is read-only; the dense (numpy) engine releases
  the GIL inside its vectorized peak queries, so shards overlap there,
  while skyline shards interleave cooperatively — either way the
  partition bounds the work per task and keeps the reduction exact.
* The pool is lazy: a fleet with one shard (or ``max_workers=1``) runs
  every scan inline on the calling thread, which keeps the ``K=1`` path
  byte-for-byte identical to an unsharded allocator with zero thread
  overhead.

The view is intentionally thin: it is a :class:`~typing.Sequence` over
the *original* states list (no copy), so a
:class:`~repro.placement.index.CandidateIndex` built over that list
still ``covers()`` the fleet and static type-pruning keeps working.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.exceptions import ValidationError
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.allocators.state import ServerState

__all__ = ["ShardedFleet", "shard_bounds"]

_T = TypeVar("_T")


def shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` position ranges splitting ``n`` into
    ``shards`` near-equal parts (the first ``n % shards`` shards get the
    extra element)."""
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(n, shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardedFleet(Sequence):
    """A K-way sharded view over a fleet's server states.

    Parameters
    ----------
    states:
        The fleet's ``ServerState`` list. Held by reference (not
        copied), so a prepared allocator's candidate index still covers
        the view.
    shards:
        Requested shard count; clamped to the fleet size so no shard is
        ever empty (``K=1`` for an empty fleet).
    max_workers:
        Thread-pool width for parallel shard scans; defaults to the
        shard count. ``1`` forces inline execution.
    on_scan_time:
        Optional callback receiving each shard scan's wall-clock
        duration in seconds (the service feeds its
        ``repro_shard_scan_seconds`` histogram through this).
    """

    def __init__(self, states: Sequence["ServerState"], *,
                 shards: int = 1, max_workers: int | None = None,
                 on_scan_time: Callable[[float], None] | None = None
                 ) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}")
        self.states = states if isinstance(states, list) else list(states)
        self.n_shards = max(1, min(shards, len(self.states)))
        self._bounds = shard_bounds(len(self.states), self.n_shards)
        self._locks = [threading.Lock() for _ in range(self.n_shards)]
        self._max_workers = max_workers
        self.on_scan_time = on_scan_time
        self._position = {id(state): i
                          for i, state in enumerate(self.states)}
        self._shard_of = [0] * len(self.states)
        for shard, (lo, hi) in enumerate(self._bounds):
            for pos in range(lo, hi):
                self._shard_of[pos] = shard
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- sequence protocol (so the view drops in wherever a states list
    # -- is expected: explain-traces, recovery scans, diagnostics) ---------

    def __len__(self) -> int:
        return len(self.states)

    def __getitem__(self, index):
        return self.states[index]

    def __repr__(self) -> str:
        return (f"ShardedFleet(servers={len(self.states)}, "
                f"shards={self.n_shards})")

    # -- partition ---------------------------------------------------------

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """The ``[lo, hi)`` fleet-position range of each shard."""
        return tuple(self._bounds)

    def shard_of(self, position: int) -> int:
        """The shard owning fleet position ``position``."""
        return self._shard_of[position]

    def position_of(self, state: "ServerState") -> int:
        """The fleet position of ``state`` (identity lookup)."""
        try:
            return self._position[id(state)]
        except KeyError:
            raise ValidationError(
                f"{state!r} is not part of this fleet") from None

    def lock_for(self, position: int) -> threading.Lock:
        """The state lock of the shard owning ``position`` — writers
        (placement commits) take this so shard scans never observe a
        half-applied mutation."""
        return self._locks[self._shard_of[position]]

    def scatter(self, sequence: Sequence[tuple[int, "ServerState"]]
                ) -> list[list[tuple[int, "ServerState"]]]:
        """Route a scan sequence of ``(ordinal, state)`` pairs to the
        shard owning each state, preserving the sequence order within
        every chunk (the property the deterministic fold relies on).

        With one shard there is nothing to route — the sequence *is*
        the single chunk (membership is not checked on this fast path;
        a foreign state would be caught by routing at any higher shard
        count, and the scan itself only ever probes what it is given).
        """
        if self.n_shards == 1:
            return [list(sequence)]
        chunks: list[list[tuple[int, "ServerState"]]] = \
            [[] for _ in range(self.n_shards)]
        position = self._position
        shard_of = self._shard_of
        for item in sequence:
            pos = position.get(id(item[1]))
            if pos is None:
                raise ValidationError(
                    f"scan sequence contains a state outside this fleet: "
                    f"{item[1]!r}")
            chunks[shard_of[pos]].append(item)
        return chunks

    # -- execution ---------------------------------------------------------

    def map_scans(self, fn: Callable[[Sequence[tuple[int, "ServerState"]]],
                                     _T],
                  chunks: Sequence[Sequence[tuple[int, "ServerState"]]]
                  ) -> list[_T]:
        """Apply ``fn`` to every non-empty chunk, one task per shard.

        Results come back in ascending shard order regardless of
        completion order — the fold in ``select_sharded`` depends on
        that. Each task runs inside its shard's state lock and a
        ``allocator.shard_scan`` tracer span; the scan duration is
        reported through ``on_scan_time``.
        """
        live = [i for i, chunk in enumerate(chunks) if chunk]

        def run(shard: int) -> _T:
            chunk = chunks[shard]
            tracer = get_tracer()
            with tracer.span("allocator.shard_scan", shard=shard,
                             candidates=len(chunk)):
                with self._locks[shard]:
                    started = perf_counter()
                    result = fn(chunk)
                    elapsed = perf_counter() - started
            if self.on_scan_time is not None:
                self.on_scan_time(elapsed)
            return result

        if len(live) <= 1 or self._max_workers == 1:
            return [run(shard) for shard in live]
        pool = self._ensure_pool()
        futures = [pool.submit(run, shard) for shard in live]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers or self.n_shards,
                    thread_name_prefix="repro-shard")
            return self._pool

    def close(self) -> None:
        """Shut the scan pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
