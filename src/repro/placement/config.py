"""Engine selection as one frozen config object.

Historically the placement engine was chosen by a bare string
(``engine="indexed"`` / ``"dense"``) threaded through every constructor,
and each speedup layer bolted on its own toggle next to it. An
:class:`EngineConfig` collapses the whole choice — occupancy backend,
batch probe kernel on/off, and a shard-count hint for sharded scans —
into a single frozen value accepted everywhere the string used to be:
:func:`~repro.allocators.registry.make_allocator`, the allocator and
:class:`~repro.service.state.ClusterStateStore` constructors, and
``repro serve --algo-param engine=...``.

Two string forms exist:

* the **spec string** (:meth:`EngineConfig.parse`) — the sanctioned
  flat form for CLIs, config files and snapshots:
  ``"indexed"``, ``"dense"``, ``"indexed:kernel=off"``,
  ``"indexed:kernel=on,shards=8"``;
* the **legacy ctor string** (``engine="dense"`` passed directly to a
  constructor) — still works through :meth:`EngineConfig.coerce` but
  emits a :class:`DeprecationWarning`; pass an :class:`EngineConfig`
  (or a spec string where a spec string is documented) instead.

Snapshots journal the active config (:meth:`to_record` /
:meth:`from_record`) so a restored daemon picks the same engine and
kernel setting it was running with.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ValidationError
from repro.placement.occupancy import DEFAULT_ENGINE, ENGINES

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """The placement-engine choice, as one immutable value.

    Parameters
    ----------
    engine:
        Occupancy backend: ``"indexed"`` (sparse skyline, the default)
        or ``"dense"`` (numpy timeline oracle).
    kernel:
        Whether scans may use the vectorized fleet-probe kernel
        (:class:`~repro.placement.kernels.FleetKernel`). ``None`` means
        the engine default — on for ``"indexed"``, and necessarily off
        for ``"dense"`` (the kernel mirrors skylines). Explicitly
        requesting ``kernel=True`` on the dense engine is an error.
    shards:
        Optional shard-count hint for sharded scans; consumers that
        build their own :class:`~repro.placement.sharding.ShardedFleet`
        (``allocate_batch``, the service daemon) use it as the default
        when no explicit shard count is given. ``None`` means no hint.
    """

    engine: str = DEFAULT_ENGINE
    kernel: bool | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown placement engine {self.engine!r}; "
                f"valid engines: {ENGINES}")
        if self.kernel is True and self.engine != "indexed":
            raise ValidationError(
                "the batch probe kernel mirrors skyline occupancy and "
                "needs engine='indexed'; drop kernel=True or switch "
                "engines")
        if self.shards is not None and self.shards < 1:
            raise ValidationError(
                f"shards hint must be >= 1, got {self.shards}")

    @property
    def use_kernel(self) -> bool:
        """The resolved kernel toggle (engine default applied)."""
        if self.kernel is None:
            return self.engine == "indexed"
        return self.kernel

    @property
    def spec(self) -> str:
        """The canonical flat spec string (``parse`` round-trips it)."""
        options = []
        if self.kernel is not None:
            options.append(f"kernel={'on' if self.kernel else 'off'}")
        if self.shards is not None:
            options.append(f"shards={self.shards}")
        if not options:
            return self.engine
        return f"{self.engine}:{','.join(options)}"

    @classmethod
    def parse(cls, text: str) -> "EngineConfig":
        """Build a config from a spec string (see module docstring).

        This is the sanctioned string entry point — CLI values, config
        files and snapshot records go through here and do **not**
        trigger the legacy-string deprecation.
        """
        head, sep, tail = text.partition(":")
        engine = head.strip()
        kernel: bool | None = None
        shards: int | None = None
        if sep:
            for item in tail.split(","):
                key, eq, raw = item.partition("=")
                key, raw = key.strip(), raw.strip()
                if not eq:
                    raise ValidationError(
                        f"bad engine spec {text!r}: expected "
                        f"key=value, got {item!r}")
                if key == "kernel":
                    if raw not in ("on", "off", "true", "false"):
                        raise ValidationError(
                            f"bad engine spec {text!r}: kernel must be "
                            f"on/off, got {raw!r}")
                    kernel = raw in ("on", "true")
                elif key == "shards":
                    try:
                        shards = int(raw)
                    except ValueError:
                        raise ValidationError(
                            f"bad engine spec {text!r}: shards must be "
                            f"an integer, got {raw!r}") from None
                else:
                    raise ValidationError(
                        f"bad engine spec {text!r}: unknown option "
                        f"{key!r} (valid: kernel, shards)")
        return cls(engine=engine, kernel=kernel, shards=shards)

    @classmethod
    def coerce(cls, value: "EngineConfig | str | None", *,
               warn: bool = True, stacklevel: int = 3) -> "EngineConfig":
        """Normalize a constructor's ``engine`` argument.

        ``None`` means the default config; an :class:`EngineConfig`
        passes through; a string is parsed as a spec string but — being
        the deprecated ctor form — emits a :class:`DeprecationWarning`
        unless ``warn=False`` (internal plumbing that already warned
        upstream).
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if warn:
                warnings.warn(
                    "passing the placement engine as a bare string is "
                    "deprecated; pass an EngineConfig (e.g. "
                    f"EngineConfig(engine={value.split(':')[0]!r})) "
                    "instead",
                    DeprecationWarning, stacklevel=stacklevel)
            return cls.parse(value)
        raise ValidationError(
            f"engine must be an EngineConfig or a spec string, "
            f"got {value!r}")

    def to_record(self) -> dict[str, object]:
        """JSON-portable form for snapshots."""
        record: dict[str, object] = {"engine": self.engine}
        if self.kernel is not None:
            record["kernel"] = self.kernel
        if self.shards is not None:
            record["shards"] = self.shards
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "EngineConfig":
        kernel = record.get("kernel")
        shards = record.get("shards")
        return cls(engine=str(record.get("engine", DEFAULT_ENGINE)),
                   kernel=None if kernel is None else bool(kernel),
                   shards=None if shards is None else int(shards))
