"""Engine selection as one frozen config object.

Historically the placement engine was chosen by a bare string
(``engine="indexed"`` / ``"dense"``) threaded through every constructor,
and each speedup layer bolted on its own toggle next to it. An
:class:`EngineConfig` collapses the whole choice — occupancy backend,
batch probe kernel on/off, a shard-count hint for sharded scans, and
the Γ-robustness budget — into a single frozen value accepted
everywhere the string used to be:
:func:`~repro.allocators.registry.make_allocator`, the allocator and
:class:`~repro.service.state.ClusterStateStore` constructors, and
``repro serve --algo-param engine=...``.

The **spec string** (:meth:`EngineConfig.parse`) is the sanctioned flat
form for CLIs, config files and snapshots: ``"indexed"``, ``"dense"``,
``"indexed:kernel=off"``, ``"indexed:kernel=on,shards=8"``,
``"indexed:gamma=2"``, ``"indexed:gamma=3,mode=box"``.

The legacy ctor string (``engine="dense"`` passed directly to an
allocator constructor) completed its deprecation cycle and has been
**removed**: :meth:`EngineConfig.coerce` now raises
:class:`~repro.exceptions.ValidationError` for it. Pass an
:class:`EngineConfig` instead — ``docs/api.md`` ("Engine configuration")
has the migration table. Constructors documented to take a *spec
string* (:class:`~repro.service.state.ClusterStateStore`,
``make_allocator``'s ``engine`` parameter) still do; only the bare
allocator-constructor form is gone.

Snapshots journal the active config (:meth:`to_record` /
:meth:`from_record`) so a restored daemon picks the same engine, kernel
setting and robustness budget it was running with; records written
before the robustness fields existed restore to ``robustness=None``
(nominal probing) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ValidationError
from repro.placement.occupancy import DEFAULT_ENGINE, ENGINES
from repro.robust.config import RobustnessConfig

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """The placement-engine choice, as one immutable value.

    Parameters
    ----------
    engine:
        Occupancy backend: ``"indexed"`` (sparse skyline, the default)
        or ``"dense"`` (numpy timeline oracle).
    kernel:
        Whether scans may use the vectorized fleet-probe kernel
        (:class:`~repro.placement.kernels.FleetKernel`). ``None`` means
        the engine default — on for ``"indexed"``, and necessarily off
        for ``"dense"`` (the kernel mirrors skylines). Explicitly
        requesting ``kernel=True`` on the dense engine is an error.
    shards:
        Optional shard-count hint for sharded scans; consumers that
        build their own :class:`~repro.placement.sharding.ShardedFleet`
        (``allocate_batch``, the service daemon) use it as the default
        when no explicit shard count is given. ``None`` means no hint.
    robustness:
        Optional :class:`~repro.robust.config.RobustnessConfig`.
        ``None`` (and an inactive config, ``gamma=0``) means nominal
        probing — bit-identical to the engine before robustness
        existed. An *active* config needs the indexed engine: the
        robust skyline tracks per-segment radius multisets the dense
        oracle has no representation for.
    """

    engine: str = DEFAULT_ENGINE
    kernel: bool | None = None
    shards: int | None = None
    robustness: RobustnessConfig | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown placement engine {self.engine!r}; "
                f"valid engines: {ENGINES}")
        if self.kernel is True and self.engine != "indexed":
            raise ValidationError(
                "the batch probe kernel mirrors skyline occupancy and "
                "needs engine='indexed'; drop kernel=True or switch "
                "engines")
        if self.shards is not None and self.shards < 1:
            raise ValidationError(
                f"shards hint must be >= 1, got {self.shards}")
        if self.robustness is not None and self.robustness.active \
                and self.engine != "indexed":
            raise ValidationError(
                "robust probing tracks per-segment radius multisets on "
                "the skyline index and needs engine='indexed'; drop the "
                "robustness config or switch engines")

    @property
    def use_kernel(self) -> bool:
        """The resolved kernel toggle (engine default applied)."""
        if self.kernel is None:
            return self.engine == "indexed"
        return self.kernel

    @property
    def active_robustness(self) -> RobustnessConfig | None:
        """The robustness config when it actually changes probes.

        ``None`` both when no config rides along and when the config is
        inactive (``gamma=0`` in gamma mode), so consumers branch on
        one check and the inactive case shares the nominal code path
        exactly.
        """
        if self.robustness is not None and self.robustness.active:
            return self.robustness
        return None

    @property
    def spec(self) -> str:
        """The canonical flat spec string (``parse`` round-trips it)."""
        options = []
        if self.kernel is not None:
            options.append(f"kernel={'on' if self.kernel else 'off'}")
        if self.shards is not None:
            options.append(f"shards={self.shards}")
        if self.robustness is not None:
            options.extend(self.robustness.spec_options)
        if not options:
            return self.engine
        return f"{self.engine}:{','.join(options)}"

    @classmethod
    def parse(cls, text: str) -> "EngineConfig":
        """Build a config from a spec string (see module docstring).

        This is the sanctioned string entry point — CLI values, config
        files and snapshot records go through here.
        """
        head, sep, tail = text.partition(":")
        engine = head.strip()
        kernel: bool | None = None
        shards: int | None = None
        gamma: int | None = None
        mode: str | None = None
        if sep:
            for item in tail.split(","):
                key, eq, raw = item.partition("=")
                key, raw = key.strip(), raw.strip()
                if not eq:
                    raise ValidationError(
                        f"bad engine spec {text!r}: expected "
                        f"key=value, got {item!r}")
                if key == "kernel":
                    if raw not in ("on", "off", "true", "false"):
                        raise ValidationError(
                            f"bad engine spec {text!r}: kernel must be "
                            f"on/off, got {raw!r}")
                    kernel = raw in ("on", "true")
                elif key == "shards":
                    try:
                        shards = int(raw)
                    except ValueError:
                        raise ValidationError(
                            f"bad engine spec {text!r}: shards must be "
                            f"an integer, got {raw!r}") from None
                elif key == "gamma":
                    try:
                        gamma = int(raw)
                    except ValueError:
                        raise ValidationError(
                            f"bad engine spec {text!r}: gamma must be "
                            f"an integer, got {raw!r}") from None
                elif key == "mode":
                    mode = raw
                else:
                    raise ValidationError(
                        f"bad engine spec {text!r}: unknown option "
                        f"{key!r} (valid: kernel, shards, gamma, mode)")
        robustness: RobustnessConfig | None = None
        if gamma is not None or mode is not None:
            robustness = RobustnessConfig(
                gamma=0 if gamma is None else gamma,
                mode="gamma" if mode is None else mode)
        return cls(engine=engine, kernel=kernel, shards=shards,
                   robustness=robustness)

    @classmethod
    def coerce(cls, value: "EngineConfig | str | None", *,
               warn: bool = True, stacklevel: int = 3) -> "EngineConfig":
        """Normalize a constructor's ``engine`` argument.

        ``None`` means the default config; an :class:`EngineConfig`
        passes through. For public constructors (``warn=True``, the
        historical default) a bare string is **rejected** — the
        deprecation cycle is over; pass an :class:`EngineConfig`, or
        use an entry point documented to take a spec string
        (``make_allocator``, the service store, the CLI). Internal
        plumbing that *is* such a sanctioned spec-string surface passes
        ``warn=False`` and keeps parsing strings silently.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if warn:
                raise ValidationError(
                    "passing the placement engine as a bare constructor "
                    "string was removed after its deprecation cycle; "
                    "pass an EngineConfig (e.g. EngineConfig.parse("
                    f"{value!r})) — see docs/api.md, 'Engine "
                    "configuration'")
            return cls.parse(value)
        raise ValidationError(
            f"engine must be an EngineConfig or a spec string, "
            f"got {value!r}")

    def to_record(self) -> dict[str, object]:
        """JSON-portable form for snapshots."""
        record: dict[str, object] = {"engine": self.engine}
        if self.kernel is not None:
            record["kernel"] = self.kernel
        if self.shards is not None:
            record["shards"] = self.shards
        if self.robustness is not None:
            record["gamma"] = self.robustness.gamma
            record["mode"] = self.robustness.mode
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "EngineConfig":
        kernel = record.get("kernel")
        shards = record.get("shards")
        robustness: RobustnessConfig | None = None
        if "gamma" in record or "mode" in record:
            robustness = RobustnessConfig(
                gamma=int(record.get("gamma", 0)),
                mode=str(record.get("mode", "gamma")))
        return cls(engine=str(record.get("engine", DEFAULT_ENGINE)),
                   kernel=None if kernel is None else bool(kernel),
                   shards=None if shards is None else int(shards),
                   robustness=robustness)
