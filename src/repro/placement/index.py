"""Fleet-level candidate index: skip servers that cannot possibly win.

Fleets are built from a handful of server *types* (Table II has six), so a
per-type admission check answers "can this VM ever run on that server?"
once per type instead of once per server. :class:`CandidateIndex` groups a
``prepare``-time fleet by spec identity and lets allocators

* fetch the statically-admissible candidate list in fleet order
  (:meth:`candidates`) — order-preserving, so first-fit semantics and
  deterministic tie-breaking are untouched;
* look up per-spec admission (:meth:`spec_admits`) for allocators with
  their own scan order (ffps, round-robin, power-aware);
* recognise *pristine* servers (never hosted anything): all pristine
  servers of one spec are interchangeable, which lets min-energy probe one
  representative instead of hundreds of identical empty machines.

Incremental since the fleet-probe kernel landed: with ``kernel=True`` the
index maintains, per server type, sorted position queues of the *busy*
and *pristine* servers — ordered by fleet position and keyed by the
type's cached run-power rate, the Eq.-2/3 lower bound on any candidate's
incremental cost. The queues are updated in place on every commit /
retire / remove through the ``ServerState`` watcher protocol instead of
being rebuilt per fleet change, and the index owns the
:class:`~repro.placement.kernels.FleetKernel` that batch-probes
candidates. ``kernel=False`` reproduces the pre-kernel index exactly
(static grouping only, scalar scans).

The index is bound to the exact ``states`` list it was built from
(:meth:`covers` is an identity check); callers fall back to a plain scan
for any other fleet, so ad-hoc uses (failure recovery builds throwaway
state lists) stay correct without rebuilding.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.allocators.state import ServerState
    from repro.model.vm import VM
    from repro.placement.kernels import FleetKernel

__all__ = ["CandidateIndex", "SpecGroup"]


class SpecGroup:
    """One server type's candidate queues, in fleet-position order.

    ``busy`` and ``pristine`` partition the type's fleet positions:
    pristine servers (no VMs, no busy history) are interchangeable for
    placement, so scans probe one representative; busy servers must each
    be probed. ``rate`` is the type's run-power per cpu unit — the
    cached energy lower bound (``run = rate * cpu_time``) the min-energy
    walk prunes whole queues with.
    """

    __slots__ = ("spec", "rate", "busy", "pristine")

    def __init__(self, spec: object) -> None:
        self.spec = spec
        self.rate = float(spec.power_per_cpu_unit)
        self.busy: list[int] = []
        self.pristine: list[int] = []


class CandidateIndex:
    """Spec-grouped view of one fleet's ``ServerState`` list."""

    __slots__ = ("_states", "_spec_ids", "_specs", "_pos", "kernel",
                 "_groups", "_is_pristine", "_spec_positions",
                 "_all_positions", "__weakref__")

    def __init__(self, states: Sequence["ServerState"], *,
                 kernel: bool = False) -> None:
        # Bound by identity: `covers` compares with `is`, not `==`.
        self._states = states
        self._spec_ids = [id(st.server.spec) for st in states]
        #: distinct specs by identity, insertion-ordered
        self._specs = {}
        for st in states:
            spec = st.server.spec
            self._specs.setdefault(id(spec), spec)
        #: the batch-probe kernel (indexed engine with the kernel on)
        self.kernel: "FleetKernel | None" = None
        self._groups: dict[int, SpecGroup] | None = None
        if kernel and states:
            from repro.placement.kernels import FleetKernel

            self._pos = {id(st): i for i, st in enumerate(states)}
            self._is_pristine = [st.is_pristine for st in states]
            groups: dict[int, SpecGroup] = {}
            for i, st in enumerate(states):
                key = self._spec_ids[i]
                group = groups.get(key)
                if group is None:
                    group = groups[key] = SpecGroup(st.server.spec)
                (group.pristine if self._is_pristine[i]
                 else group.busy).append(i)
            self._groups = groups
            self._spec_positions = {
                key: np.fromiter(
                    (i for i, k in enumerate(self._spec_ids) if k == key),
                    dtype=np.intp)
                for key in self._specs}
            self._all_positions = np.arange(len(states), dtype=np.intp)
            self.kernel = FleetKernel(states)
            for st in states:
                st.add_watcher(self)

    def covers(self, states: Sequence["ServerState"]) -> bool:
        """Whether this index was built from exactly this ``states`` list."""
        return states is self._states

    # -- incremental maintenance -------------------------------------------

    def server_state_changed(self, state: "ServerState") -> None:
        """Watcher hook: re-queue a server whose pristine status flipped.

        Commits move a position from its type's pristine queue to the
        busy queue; a remove that empties the server moves it back. The
        queues stay position-sorted via bisect, so scans keep walking
        candidates in fleet order. (The kernel registers its own
        watcher for occupancy rows; this hook only owns the queues.)
        """
        pos = self._pos.get(id(state))
        if pos is None:
            return
        pristine = state.is_pristine
        if pristine == self._is_pristine[pos]:
            return
        self._is_pristine[pos] = pristine
        group = self._groups[self._spec_ids[pos]]
        source, target = ((group.busy, group.pristine) if pristine
                          else (group.pristine, group.busy))
        i = bisect.bisect_left(source, pos)
        if i < len(source) and source[i] == pos:
            del source[i]
        bisect.insort(target, pos)

    # -- static admission ---------------------------------------------------

    def spec_admits(self, vm: "VM") -> dict[int, bool]:
        """``id(spec) -> can this server type ever host vm`` (static caps)."""
        cpu, mem = vm.cpu, vm.memory
        return {key: not (cpu > spec.cpu_capacity or mem > spec.memory_capacity)
                for key, spec in self._specs.items()}

    def candidates(self, vm: "VM") -> Sequence["ServerState"]:
        """Statically-admissible servers in fleet order.

        Returns the original list object unchanged when every type admits
        the VM (the common case — no copy, no allocation).
        """
        admits = self.spec_admits(vm)
        if all(admits.values()):
            return self._states
        return [st for st, key in zip(self._states, self._spec_ids)
                if admits[key]]

    def candidate_positions(self, vm: "VM") -> np.ndarray:
        """Fleet positions of the admissible candidates, in fleet order.

        Kernel-mode only. The all-admitted case returns a cached
        ``arange`` — no per-VM allocation.
        """
        admits = self.spec_admits(vm)
        if all(admits.values()):
            return self._all_positions
        keep = [self._spec_positions[key]
                for key, ok in admits.items() if ok]
        if not keep:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(keep))

    def admitted_mask(self, vm: "VM") -> np.ndarray | None:
        """Boolean mask over fleet positions (``None`` = all admitted).

        Kernel-mode only; custom scan orders (shuffles, rotations)
        filter their position arrays with it, mirroring the scalar
        :meth:`spec_admits` skip.
        """
        admits = self.spec_admits(vm)
        if all(admits.values()):
            return None
        mask = np.zeros(len(self._states), dtype=bool)
        for key, ok in admits.items():
            if ok:
                mask[self._spec_positions[key]] = True
        return mask

    def groups_for(self, vm: "VM") -> list[SpecGroup] | None:
        """The admissible types' candidate queues (``None`` without the
        kernel structures — callers run their scalar scan)."""
        if self._groups is None:
            return None
        admits = self.spec_admits(vm)
        return [group for key, group in self._groups.items()
                if admits[key]]
