"""Fleet-level candidate index: skip servers that cannot possibly win.

Fleets are built from a handful of server *types* (Table II has six), so a
per-type admission check answers "can this VM ever run on that server?"
once per type instead of once per server. :class:`CandidateIndex` groups a
``prepare``-time fleet by spec identity and lets allocators

* fetch the statically-admissible candidate list in fleet order
  (:meth:`candidates`) — order-preserving, so first-fit semantics and
  deterministic tie-breaking are untouched;
* look up per-spec admission (:meth:`spec_admits`) for allocators with
  their own scan order (ffps, round-robin, power-aware);
* recognise *pristine* servers (never hosted anything): all pristine
  servers of one spec are interchangeable, which lets min-energy probe one
  representative instead of hundreds of identical empty machines.

The index is bound to the exact ``states`` list it was built from
(:meth:`covers` is an identity check); callers fall back to a plain scan
for any other fleet, so ad-hoc uses (failure recovery builds throwaway
state lists) stay correct without rebuilding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.allocators.state import ServerState
    from repro.model.vm import VM

__all__ = ["CandidateIndex"]


class CandidateIndex:
    """Spec-grouped view of one fleet's ``ServerState`` list."""

    __slots__ = ("_states", "_spec_ids", "_specs")

    def __init__(self, states: Sequence["ServerState"]) -> None:
        # Bound by identity: `covers` compares with `is`, not `==`.
        self._states = states
        self._spec_ids = [id(st.server.spec) for st in states]
        #: distinct specs by identity, insertion-ordered
        self._specs = {}
        for st in states:
            spec = st.server.spec
            self._specs.setdefault(id(spec), spec)

    def covers(self, states: Sequence["ServerState"]) -> bool:
        """Whether this index was built from exactly this ``states`` list."""
        return states is self._states

    def spec_admits(self, vm: "VM") -> dict[int, bool]:
        """``id(spec) -> can this server type ever host vm`` (static caps)."""
        cpu, mem = vm.cpu, vm.memory
        return {key: not (cpu > spec.cpu_capacity or mem > spec.memory_capacity)
                for key, spec in self._specs.items()}

    def candidates(self, vm: "VM") -> Sequence["ServerState"]:
        """Statically-admissible servers in fleet order.

        Returns the original list object unchanged when every type admits
        the VM (the common case — no copy, no allocation).
        """
        admits = self.spec_admits(vm)
        if all(admits.values()):
            return self._states
        return [st for st, key in zip(self._states, self._spec_ids)
                if admits[key]]
