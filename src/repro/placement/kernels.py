"""The vectorized fleet-probe kernel: one pass, every candidate.

At 10k-VM / 3k-server scale the per-VM selection loop — thousands of
Python-level ``ServerState.probe`` calls per placement — dominates the
allocation wall clock. :class:`FleetKernel` replaces it with a
structure-of-arrays mirror of the fleet's skyline occupancy indexes:
per-server change points live in contiguous padded numpy arrays, and one
:meth:`FleetKernel.probe_fleet` call answers feasibility, failing
constraint, peak cpu/mem, headroom, and the Eq.-2/3 run cost ``W_ij``
for *all* candidates of a VM in a single vectorized pass.

Two-level probe API
-------------------
``ServerState.probe(vm)`` remains the scalar view — one server, one
:class:`~repro.placement.feasibility.Feasibility`. The kernel is the
batch level underneath: :meth:`probe_fleet` returns a
:class:`FeasibilityBatch` whose rows index back into per-server
``Feasibility`` views, and :meth:`probe_one` is a thin delegate that
runs the batch kernel over a single-candidate fleet. The property tests
pin the two levels equal element-wise — same feasible flag, same reason
string, bit-identical peaks and headroom.

Bit-exactness
-------------
The mirror copies each skyline's breakpoint values verbatim (copying a
float copies its bits), the vectorized comparisons apply the same
IEEE-754 float64 operations the scalar loop applies (``c + cpu >
cap + tol`` elementwise), and peaks take a max over the identical
multiset of segment values — so a kernel-driven scan chooses the same
server, with the same Eq.-17 energy, as the scalar scan. This is
asserted with ``==`` (never ``approx``) across every registered
allocator in ``tests/test_kernel.py`` and the 10k-scale benchmark gate.

Incremental sync
----------------
Server mutations (``place_trusted``, ``remove``, ``retire``,
``compact``) notify their watchers; the kernel marks the row dirty and
re-copies it lazily at the next probe sweep — O(changed rows), not
O(fleet). Scratch rows live in pooled buffers that grow geometrically,
so a probe sweep performs no per-candidate Python allocation.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.model.phases import demand_profile
from repro.placement.feasibility import Feasibility

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.allocators.state import ServerState
    from repro.model.vm import VM

__all__ = ["FeasibilityBatch", "FleetKernel",
           "FEASIBLE", "CPU_CAPACITY", "MEM_CAPACITY",
           "CPU_OVERLAP", "MEM_OVERLAP"]

#: Failing-constraint codes carried by :class:`FeasibilityBatch`.
FEASIBLE = 0
CPU_CAPACITY = 1
MEM_CAPACITY = 2
CPU_OVERLAP = 3
MEM_OVERLAP = 4

_MIN_WIDTH = 8


class FeasibilityBatch:
    """Array-backed feasibility verdicts for one VM over many servers.

    The batch is the native result of :meth:`FleetKernel.probe_fleet`:
    parallel numpy arrays over the probed candidates, in candidate
    order. Indexing (``batch[i]``) lazily materializes the scalar
    :class:`~repro.placement.feasibility.Feasibility` view for one
    candidate — identical to what ``ServerState.probe`` returns for the
    same server, including the reason string.

    Attributes
    ----------
    positions:
        Kernel fleet positions of the probed candidates (``intp``).
    codes:
        Failing-constraint code per candidate (:data:`FEASIBLE`,
        :data:`CPU_CAPACITY`, :data:`MEM_CAPACITY`,
        :data:`CPU_OVERLAP`, :data:`MEM_OVERLAP`).
    times:
        First overloaded time unit (valid for the overlap codes).
    peak_cpu / peak_mem:
        Max committed usage over the VM's interval, scanned up to the
        failing piece exactly like the scalar probe.
    headroom_cpu / headroom_mem:
        Capacity minus peak.
    cpu_cap / mem_cap:
        Static per-candidate capacities (for vectorized scoring).
    run_cost:
        The Eq.-2/3 marginal run energy ``W_ij = P^1_i * cpu_time`` of
        the VM on each candidate's server type (computed without the
        static-fit validation of :func:`~repro.energy.power.run_energy`
        — the batch covers infeasible candidates too).
    """

    __slots__ = ("_kernel", "positions", "codes", "times",
                 "peak_cpu", "peak_mem", "headroom_cpu", "headroom_mem",
                 "cpu_cap", "mem_cap", "run_cost")

    def __init__(self, kernel: "FleetKernel", positions: np.ndarray,
                 codes: np.ndarray, times: np.ndarray,
                 peak_cpu: np.ndarray, peak_mem: np.ndarray,
                 headroom_cpu: np.ndarray, headroom_mem: np.ndarray,
                 cpu_cap: np.ndarray, mem_cap: np.ndarray,
                 run_cost: np.ndarray) -> None:
        self._kernel = kernel
        self.positions = positions
        self.codes = codes
        self.times = times
        self.peak_cpu = peak_cpu
        self.peak_mem = peak_mem
        self.headroom_cpu = headroom_cpu
        self.headroom_mem = headroom_mem
        self.cpu_cap = cpu_cap
        self.mem_cap = mem_cap
        self.run_cost = run_cost

    def __len__(self) -> int:
        return int(self.positions.size)

    @property
    def feasible(self) -> np.ndarray:
        """Boolean feasibility mask over the candidates."""
        return self.codes == FEASIBLE

    def reason(self, i: int) -> str | None:
        """The scalar probe's reason string for candidate ``i``."""
        code = int(self.codes[i])
        if code == FEASIBLE:
            return None
        if code == CPU_CAPACITY:
            return "cpu:capacity"
        if code == MEM_CAPACITY:
            return "mem:capacity"
        kind = "cpu" if code == CPU_OVERLAP else "mem"
        return f"{kind}:overlap@{int(self.times[i])}"

    def state_at(self, i: int) -> "ServerState":
        """The server state behind candidate ``i``."""
        return self._kernel.state_at(int(self.positions[i]))

    def __getitem__(self, i: int) -> Feasibility:
        """Materialize candidate ``i``'s scalar ``Feasibility`` view."""
        return Feasibility(
            bool(self.codes[i] == FEASIBLE), self.reason(i),
            float(self.peak_cpu[i]), float(self.peak_mem[i]),
            float(self.headroom_cpu[i]), float(self.headroom_mem[i]))

    def __iter__(self) -> Iterator[Feasibility]:
        return (self[i] for i in range(len(self)))

    def feasible_indices(self) -> np.ndarray:
        """Candidate indices of the feasible rows, in candidate order."""
        return np.flatnonzero(self.codes == FEASIBLE)

    def first_feasible(self) -> int | None:
        """Index of the first feasible candidate, or ``None``."""
        feasible = self.feasible_indices()
        return int(feasible[0]) if feasible.size else None


class FleetKernel:
    """Structure-of-arrays occupancy pool over one fleet's skylines.

    Built by the :class:`~repro.placement.index.CandidateIndex` at
    ``prepare`` time for the indexed engine (when the
    :class:`~repro.placement.config.EngineConfig` enables it) and kept
    in sync through the ``ServerState`` watcher protocol: every
    mutation marks its row dirty, and the next probe sweep re-copies
    only the dirty rows.
    """

    def __init__(self, states: Sequence["ServerState"]) -> None:
        self._states = list(states)
        n = len(self._states)
        self._pos = {id(state): i for i, state in enumerate(self._states)}
        self._cpu_cap = np.empty(n)
        self._mem_cap = np.empty(n)
        self._rate = np.empty(n)
        for i, state in enumerate(self._states):
            spec = state.server.spec
            self._cpu_cap[i] = spec.cpu_capacity
            self._mem_cap[i] = spec.memory_capacity
            self._rate[i] = spec.power_per_cpu_unit
        width = _MIN_WIDTH
        for state in self._states:
            width = max(width, len(state._occ))
        self._width = width
        self._xs = np.full((n, width), np.inf)
        self._occ_cpu = np.zeros((n, width))
        self._occ_mem = np.zeros((n, width))
        #: the fleet's robustness config (uniform across one fleet);
        #: when set, the mirror grows the per-segment (drop, threshold)
        #: accumulator planes of every robust skyline and probes apply
        #: the Γ-robust excess — the nominal arrays and code path are
        #: untouched when robustness is off.
        self._robust = self._states[0].robustness if self._states else None
        if self._robust is not None:
            self._drop_c = np.zeros((n, width))
            self._thr_c = np.zeros((n, width))
            self._drop_m = np.zeros((n, width))
            self._thr_m = np.zeros((n, width))
        self._k = np.zeros(n, dtype=np.int64)
        self._dirty: set[int] = set(range(n))
        self._lock = threading.Lock()
        # Pooled gather buffers for subset probes, grown geometrically.
        # Per-thread: sharded scans probe shards concurrently, so a
        # shared buffer would be overwritten mid-probe.
        self._gpool = threading.local()
        for state in self._states:
            state.add_watcher(self)

    def __len__(self) -> int:
        return len(self._states)

    # -- watcher protocol --------------------------------------------------

    def server_state_changed(self, state: "ServerState") -> None:
        """Mark ``state``'s row dirty (re-synced before the next sweep)."""
        pos = self._pos.get(id(state))
        if pos is not None:
            self._dirty.add(pos)

    # -- positions ---------------------------------------------------------

    def position_of(self, state: "ServerState") -> int | None:
        """Kernel row of ``state`` (``None`` for foreign states)."""
        return self._pos.get(id(state))

    def positions_of(self, states: Sequence["ServerState"]
                     ) -> np.ndarray | None:
        """Kernel rows of ``states`` in order; ``None`` if any state is
        not part of this fleet (callers fall back to scalar probes)."""
        pos = self._pos
        out = np.empty(len(states), dtype=np.intp)
        for i, state in enumerate(states):
            row = pos.get(id(state))
            if row is None:
                return None
            out[i] = row
        return out

    def state_at(self, position: int) -> "ServerState":
        return self._states[position]

    # -- sync --------------------------------------------------------------

    def _grow(self, width: int) -> None:
        new = max(width, self._width * 2)
        n = len(self._states)
        xs = np.full((n, new), np.inf)
        xs[:, : self._width] = self._xs
        cpu = np.zeros((n, new))
        cpu[:, : self._width] = self._occ_cpu
        mem = np.zeros((n, new))
        mem[:, : self._width] = self._occ_mem
        self._xs, self._occ_cpu, self._occ_mem = xs, cpu, mem
        if self._robust is not None:
            for name in ("_drop_c", "_thr_c", "_drop_m", "_thr_m"):
                plane = np.zeros((n, new))
                plane[:, : self._width] = getattr(self, name)
                setattr(self, name, plane)
        self._width = new  # gather pools re-key on width and self-reset

    def sync(self) -> None:
        """Re-copy every dirty row from its skyline (thread-safe)."""
        with self._lock:
            if not self._dirty:
                return
            robust = self._robust is not None
            for pos in self._dirty:
                state = self._states[pos]
                if robust:
                    xs, cpu, mem, dc, tc, dm, tm = \
                        state._occ.export_robust_rows()
                else:
                    xs, cpu, mem = state._occ.export_rows()
                k = len(xs)
                if k > self._width:
                    self._grow(k)
                self._xs[pos, :k] = xs
                self._xs[pos, k:] = np.inf
                self._occ_cpu[pos, :k] = cpu
                self._occ_cpu[pos, k:] = 0.0
                self._occ_mem[pos, :k] = mem
                self._occ_mem[pos, k:] = 0.0
                if robust:
                    self._drop_c[pos, :k] = dc
                    self._drop_c[pos, k:] = 0.0
                    self._thr_c[pos, :k] = tc
                    self._thr_c[pos, k:] = 0.0
                    self._drop_m[pos, :k] = dm
                    self._drop_m[pos, k:] = 0.0
                    self._thr_m[pos, :k] = tm
                    self._thr_m[pos, k:] = 0.0
                self._k[pos] = k
            self._dirty.clear()

    def _gather(self, rows: np.ndarray) -> tuple[np.ndarray, ...]:
        """Pooled row gather: ``(xs, cpu, mem)`` plus, on a robust
        fleet, the four accumulator planes."""
        r = rows.size
        robust = self._robust is not None
        pool = self._gpool
        cap = getattr(pool, "rows", 0)
        if r > cap or getattr(pool, "width", -1) != self._width:
            cap = max(r, cap * 2, 16)
            pool.xs = np.empty((cap, self._width))
            pool.cpu = np.empty((cap, self._width))
            pool.mem = np.empty((cap, self._width))
            if robust:
                pool.dc = np.empty((cap, self._width))
                pool.tc = np.empty((cap, self._width))
                pool.dm = np.empty((cap, self._width))
                pool.tm = np.empty((cap, self._width))
            pool.rows = cap
            pool.width = self._width
        xs = pool.xs[:r]
        cpu = pool.cpu[:r]
        mem = pool.mem[:r]
        np.take(self._xs, rows, axis=0, out=xs)
        np.take(self._occ_cpu, rows, axis=0, out=cpu)
        np.take(self._occ_mem, rows, axis=0, out=mem)
        if not robust:
            return xs, cpu, mem
        dc = pool.dc[:r]
        tc = pool.tc[:r]
        dm = pool.dm[:r]
        tm = pool.tm[:r]
        np.take(self._drop_c, rows, axis=0, out=dc)
        np.take(self._thr_c, rows, axis=0, out=tc)
        np.take(self._drop_m, rows, axis=0, out=dm)
        np.take(self._thr_m, rows, axis=0, out=tm)
        return xs, cpu, mem, dc, tc, dm, tm

    # -- probing -----------------------------------------------------------

    def probe_fleet(self, vm: "VM",
                    candidates: Sequence["ServerState"] | np.ndarray
                    | None = None) -> FeasibilityBatch:
        """Probe ``vm`` against many servers in one vectorized pass.

        ``candidates`` selects the probed rows: ``None`` sweeps the
        whole fleet, an integer array names kernel positions directly,
        and a sequence of states is mapped by identity. The returned
        :class:`FeasibilityBatch` is in candidate order and each row
        equals the scalar ``ServerState.probe`` verdict bit for bit.
        """
        self.sync()
        robust = self._robust is not None
        dc = tc = dm = tm = None
        if candidates is None:
            rows = np.arange(len(self._states), dtype=np.intp)
            xs, occ_cpu, occ_mem = self._xs, self._occ_cpu, self._occ_mem
            if robust:
                dc, tc = self._drop_c, self._thr_c
                dm, tm = self._drop_m, self._thr_m
        else:
            if isinstance(candidates, np.ndarray):
                rows = candidates.astype(np.intp, copy=False)
            else:
                mapped = self.positions_of(candidates)
                if mapped is None:
                    raise KeyError(
                        "probe_fleet: candidate outside this fleet")
                rows = mapped
            gathered = self._gather(rows)
            xs, occ_cpu, occ_mem = gathered[:3]
            if robust:
                dc, tc, dm, tm = gathered[3:]
        cpu_cap = self._cpu_cap[rows]
        mem_cap = self._mem_cap[rows]
        r = rows.size
        codes = np.zeros(r, dtype=np.int8)
        times = np.zeros(r, dtype=np.int64)
        peak_cpu = np.zeros(r)
        peak_mem = np.zeros(r)
        # Static type capacity first, exactly like the scalar probe:
        # cpu before mem, peaks left at zero. Robust probes charge the
        # VM its own radius here (a lone VM is always in the top-Γ).
        if robust:
            static_cpu = vm.cpu + vm.cpu_radius > cpu_cap
            static_mem = ~static_cpu & (vm.memory + vm.mem_radius > mem_cap)
        else:
            static_cpu = vm.cpu > cpu_cap
            static_mem = ~static_cpu & (vm.memory > mem_cap)
        codes[static_cpu] = CPU_CAPACITY
        codes[static_mem] = MEM_CAPACITY
        active = ~(static_cpu | static_mem)
        from repro.allocators.state import _TOL as tol
        if robust:
            # The Γ-robust per-segment values, in the exact op order of
            # RobustSkyline.probe_piece_robust: the probed value adds
            # drop + max(radius, threshold); the reported peak adds the
            # resident-only excess drop + threshold.
            val_cpu = occ_cpu + (dc + np.maximum(vm.cpu_radius, tc))
            val_mem = occ_mem + (dm + np.maximum(vm.mem_radius, tm))
            rob_cpu = occ_cpu + (dc + tc)
            rob_mem = occ_mem + (dm + tm)
        else:
            val_cpu, val_mem = occ_cpu, occ_mem
            rob_cpu, rob_mem = occ_cpu, occ_mem
        for piece, cpu, mem in demand_profile(vm):
            if not active.any():
                break
            start, end = piece.start, piece.end
            # Scan window per row: from the segment containing `start`
            # (bisect_right - 1, clamped) while xs[k] <= end. Padding is
            # +inf, so padded columns drop out of both conditions.
            i0 = (xs <= start).sum(axis=1) - 1
            np.maximum(i0, 0, out=i0)
            cols = np.arange(xs.shape[1])
            in_range = (cols >= i0[:, None]) & (xs <= end)
            pc = np.where(in_range, rob_cpu, 0.0).max(axis=1, initial=0.0)
            pm = np.where(in_range, rob_mem, 0.0).max(axis=1, initial=0.0)
            viol_c = in_range & (val_cpu + cpu > cpu_cap[:, None] + tol)
            viol_m = in_range & (val_mem + mem > mem_cap[:, None] + tol)
            has_c = viol_c.any(axis=1)
            has_m = viol_m.any(axis=1)
            # Peaks accumulate through the failing piece (running max).
            np.maximum(peak_cpu, np.where(active, pc, 0.0), out=peak_cpu)
            np.maximum(peak_mem, np.where(active, pm, 0.0), out=peak_mem)
            c_fail = active & has_c
            m_fail = active & ~has_c & has_m
            if c_fail.any() or m_fail.any():
                first_c = viol_c.argmax(axis=1)
                first_m = viol_m.argmax(axis=1)
                t_c = np.take_along_axis(
                    xs, first_c[:, None], axis=1)[:, 0]
                t_m = np.take_along_axis(
                    xs, first_m[:, None], axis=1)[:, 0]
                # t = x if x > start else start; rows without a
                # violation gathered an arbitrary (possibly padded)
                # breakpoint — mask them out before the integer cast.
                t_c = np.where(has_c, np.maximum(t_c, start),
                               start).astype(np.int64)
                t_m = np.where(has_m, np.maximum(t_m, start),
                               start).astype(np.int64)
                codes[c_fail] = CPU_OVERLAP
                times[c_fail] = t_c[c_fail]
                codes[m_fail] = MEM_OVERLAP
                times[m_fail] = t_m[m_fail]
                active &= ~(c_fail | m_fail)
        # cap - 0.0 == cap bit for bit, so one expression covers the
        # static-failure headroom (full caps) and the probed one.
        headroom_cpu = cpu_cap - peak_cpu
        headroom_mem = mem_cap - peak_mem
        run_cost = self._rate[rows] * vm.cpu_time
        return FeasibilityBatch(self, rows, codes, times,
                                peak_cpu, peak_mem,
                                headroom_cpu, headroom_mem,
                                cpu_cap, mem_cap, run_cost)

    def probe_one(self, state: "ServerState", vm: "VM") -> Feasibility:
        """Scalar-view probe as a thin delegate to the batch kernel."""
        pos = self._pos.get(id(state))
        if pos is None:
            raise KeyError("probe_one: state outside this fleet")
        batch = self.probe_fleet(
            vm, np.array([pos], dtype=np.intp))
        return batch[0]
