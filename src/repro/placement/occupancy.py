"""Per-server occupancy indexes: how much CPU/memory is committed when.

Two interchangeable backends answer the three queries every placement
decision needs — peak usage over a closed interval ``[start, end]``, the
first time unit where adding ``(cpu, mem)`` would violate capacity, and
incremental add/subtract as VMs are placed and removed:

* :class:`SkylineOccupancy` — the production index. A sorted change-point
  *skyline*: breakpoint ``xs[i]`` opens a segment ``[xs[i], xs[i+1])`` of
  constant committed ``(cpu, mem)``; usage is zero before ``xs[0]`` and the
  last segment extends to infinity (its value is zero once trailing
  demand is coalesced away). Updates and probes cost O(log k + s) for k
  breakpoints and s overlapped segments — independent of the simulated
  horizon, so a long-running daemon's memory no longer grows with time.
* :class:`DenseOccupancy` — the original dense numpy timeline, kept as the
  test oracle and selectable via ``engine="dense"``.

Bit-exact equivalence, not approximate: for any time unit the skyline
applies the same IEEE-754 ``+=``/``-=`` sequence to the same running value
the dense arrays would (splitting a segment copies the value's bits), and
peaks take a max over the identical multiset of values. The property tests
in ``tests/test_placement_properties.py`` assert ``==`` on floats, not
``pytest.approx``.
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = ["SkylineOccupancy", "DenseOccupancy", "make_occupancy",
           "ENGINES", "DEFAULT_ENGINE"]

#: Valid values for the ``engine`` parameter accepted across the API.
ENGINES = ("indexed", "dense")
#: The sparse skyline index is the default everywhere.
DEFAULT_ENGINE = "indexed"

_INITIAL_HORIZON = 256


class SkylineOccupancy:
    """Sparse change-point skyline of committed (cpu, mem) over time."""

    __slots__ = ("_xs", "_cpu", "_mem")

    def __init__(self) -> None:
        #: sorted breakpoints; segment i is [xs[i], xs[i+1]) at constant
        #: (_cpu[i], _mem[i]); zero before xs[0]; last segment open-ended.
        self._xs: list[int] = []
        self._cpu: list[float] = []
        self._mem: list[float] = []

    def __len__(self) -> int:
        """Number of tracked change points (the index's memory footprint)."""
        return len(self._xs)

    # -- updates -----------------------------------------------------------

    def _cut(self, t: int) -> int:
        """Ensure a breakpoint exists exactly at ``t``; return its index."""
        xs = self._xs
        i = bisect.bisect_right(xs, t) - 1
        if i >= 0 and xs[i] == t:
            return i
        # Split segment i (or the implicit zero region before xs[0]),
        # copying its value so usage at every time unit is unchanged.
        xs.insert(i + 1, t)
        self._cpu.insert(i + 1, self._cpu[i] if i >= 0 else 0.0)
        self._mem.insert(i + 1, self._mem[i] if i >= 0 else 0.0)
        return i + 1

    def _apply(self, start: int, end: int, cpu: float, mem: float) -> None:
        lo = self._cut(start)
        hi = self._cut(end + 1)
        for k in range(lo, hi):
            self._cpu[k] += cpu
            self._mem[k] += mem
        self._coalesce(lo, hi)

    def add(self, start: int, end: int, cpu: float, mem: float) -> None:
        """Commit ``(cpu, mem)`` over the closed interval ``[start, end]``."""
        self._apply(start, end, cpu, mem)

    def subtract(self, start: int, end: int, cpu: float, mem: float) -> None:
        """Withdraw ``(cpu, mem)`` over the closed interval ``[start, end]``."""
        self._apply(start, end, -cpu, -mem)

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge equal-valued neighbours around the touched window and drop
        leading zero segments (the region before ``xs[0]`` is implicitly
        zero, so a zero-valued first segment carries no information)."""
        xs, cpu, mem = self._xs, self._cpu, self._mem
        k = min(hi + 1, len(xs) - 1)
        floor = max(lo, 1)
        while k >= floor:
            if cpu[k] == cpu[k - 1] and mem[k] == mem[k - 1]:
                del xs[k], cpu[k], mem[k]
            k -= 1
        while xs and cpu[0] == 0.0 and mem[0] == 0.0:
            del xs[0], cpu[0], mem[0]

    def compact(self, before: int) -> None:
        """Forget change points strictly before time ``before``.

        Only the latest breakpoint at or before ``before`` is kept (it
        carries the value in force at ``before``); queries over
        ``[before, inf)`` are unaffected. Used by the online service to
        retire finished VMs so memory tracks *live* load, not elapsed time.
        """
        i = bisect.bisect_right(self._xs, before) - 1
        if i > 0:
            del self._xs[:i], self._cpu[:i], self._mem[:i]
        while self._xs and self._cpu[0] == 0.0 and self._mem[0] == 0.0:
            del self._xs[0], self._cpu[0], self._mem[0]

    # -- queries -----------------------------------------------------------

    def peak(self, start: int, end: int) -> tuple[float, float]:
        """Max committed (cpu, mem) over the closed interval ``[start, end]``."""
        xs = self._xs
        peak_cpu = peak_mem = 0.0
        i = bisect.bisect_right(xs, start) - 1
        if i < 0:
            i = 0
        for k in range(i, len(xs)):
            if xs[k] > end:
                break
            if self._cpu[k] > peak_cpu:
                peak_cpu = self._cpu[k]
            if self._mem[k] > peak_mem:
                peak_mem = self._mem[k]
        return peak_cpu, peak_mem

    def probe_piece(self, start: int, end: int, cpu: float, mem: float,
                    cpu_cap: float, mem_cap: float, tol: float
                    ) -> tuple[str | None, float, float]:
        """Feasibility of adding ``(cpu, mem)`` over ``[start, end]``.

        Returns ``(reason, peak_cpu, peak_mem)`` where ``reason`` is
        ``None`` when the piece fits, else ``"cpu:overlap@t"`` /
        ``"mem:overlap@t"`` naming the first violating time unit. CPU is
        checked before memory, matching the historical ``fits`` order.
        """
        xs = self._xs
        peak_cpu = peak_mem = 0.0
        t_cpu: int | None = None
        t_mem: int | None = None
        i = bisect.bisect_right(xs, start) - 1
        if i < 0:
            i = 0
        for k in range(i, len(xs)):
            x = xs[k]
            if x > end:
                break
            c = self._cpu[k]
            m = self._mem[k]
            if c > peak_cpu:
                peak_cpu = c
            if m > peak_mem:
                peak_mem = m
            if t_cpu is None and c + cpu > cpu_cap + tol:
                t_cpu = x if x > start else start
            if t_mem is None and m + mem > mem_cap + tol:
                t_mem = x if x > start else start
        if t_cpu is not None:
            return f"cpu:overlap@{t_cpu}", peak_cpu, peak_mem
        if t_mem is not None:
            return f"mem:overlap@{t_mem}", peak_cpu, peak_mem
        return None, peak_cpu, peak_mem

    def points(self) -> list[int]:
        """The current change points (introspection / memory regression)."""
        return list(self._xs)

    def export_rows(self) -> tuple[list[int], list[float], list[float]]:
        """The raw ``(xs, cpu, mem)`` change-point rows, by reference.

        The fleet-probe kernel (:mod:`repro.placement.kernels`) copies
        these into its structure-of-arrays mirror; callers must treat
        the returned lists as read-only.
        """
        return self._xs, self._cpu, self._mem


class DenseOccupancy:
    """The original dense per-time-unit numpy timeline (test oracle)."""

    __slots__ = ("_cpu", "_mem")

    def __init__(self) -> None:
        self._cpu = np.zeros(_INITIAL_HORIZON)
        self._mem = np.zeros(_INITIAL_HORIZON)

    def __len__(self) -> int:
        return int(self._cpu.size)

    def _ensure_horizon(self, end: int) -> None:
        needed = end + 1
        if needed <= self._cpu.size:
            return
        new_size = max(needed, self._cpu.size * 2)
        cpu = np.zeros(new_size)
        cpu[: self._cpu.size] = self._cpu
        mem = np.zeros(new_size)
        mem[: self._mem.size] = self._mem
        self._cpu = cpu
        self._mem = mem

    def add(self, start: int, end: int, cpu: float, mem: float) -> None:
        self._ensure_horizon(end)
        self._cpu[start:end + 1] += cpu
        self._mem[start:end + 1] += mem

    def subtract(self, start: int, end: int, cpu: float, mem: float) -> None:
        self._cpu[start:end + 1] -= cpu
        self._mem[start:end + 1] -= mem

    def compact(self, before: int) -> None:
        """Dense timelines cannot forget the past; kept for interface parity."""

    def peak(self, start: int, end: int) -> tuple[float, float]:
        hi = min(end + 1, self._cpu.size)
        if start >= hi:
            return 0.0, 0.0
        return (float(self._cpu[start:hi].max()),
                float(self._mem[start:hi].max()))

    def probe_piece(self, start: int, end: int, cpu: float, mem: float,
                    cpu_cap: float, mem_cap: float, tol: float
                    ) -> tuple[str | None, float, float]:
        hi = min(end + 1, self._cpu.size)
        if start >= hi:  # beyond tracked usage: empty there
            return None, 0.0, 0.0
        cpu_slice = self._cpu[start:hi]
        mem_slice = self._mem[start:hi]
        peak_cpu = float(cpu_slice.max())
        peak_mem = float(mem_slice.max())
        if peak_cpu + cpu > cpu_cap + tol:
            over = np.flatnonzero(cpu_slice + cpu > cpu_cap + tol)
            return f"cpu:overlap@{start + int(over[0])}", peak_cpu, peak_mem
        if peak_mem + mem > mem_cap + tol:
            over = np.flatnonzero(mem_slice + mem > mem_cap + tol)
            return f"mem:overlap@{start + int(over[0])}", peak_cpu, peak_mem
        return None, peak_cpu, peak_mem

    def points(self) -> list[int]:
        """Nonzero time units (dense arrays have no change-point structure)."""
        return [int(t) for t in
                np.flatnonzero((self._cpu != 0.0) | (self._mem != 0.0))]


def make_occupancy(engine: str, robustness=None):
    """Build the occupancy backend for ``engine`` (see :data:`ENGINES`).

    With an *active* :class:`~repro.robust.config.RobustnessConfig` the
    indexed engine gets the :class:`~repro.robust.skyline.RobustSkyline`
    (per-segment radius multisets next to the nominal values); an
    inactive or absent config keeps the plain skyline, so nominal
    probing is the identical code path, not a zero-budget special case.
    """
    if engine == "indexed":
        if robustness is not None and robustness.active:
            from repro.robust.skyline import RobustSkyline
            return RobustSkyline(robustness)
        return SkylineOccupancy()
    if engine == "dense":
        if robustness is not None and robustness.active:
            raise ValueError(
                "robust probing needs the indexed (skyline) engine")
        return DenseOccupancy()
    raise ValueError(
        f"unknown placement engine {engine!r}; valid engines: {ENGINES}")
