"""The unified feasibility verdict returned by ``ServerState.probe``.

One probe answers everything the old ``fits`` / ``fit_reason`` /
``peak_usage`` trio answered separately — and in a single pass over the
server's occupancy index instead of three:

* ``feasible`` — can the VM run here for its whole interval (Eqs. 9-10)?
* ``reason`` — the failing constraint when it cannot (``"cpu:capacity"``,
  ``"mem:capacity"``, ``"cpu:overlap@t"`` or ``"mem:overlap@t"`` naming the
  first overloaded time unit), ``None`` when feasible;
* ``peak_cpu`` / ``peak_mem`` — the committed usage at the most loaded time
  unit of the VM's interval;
* ``headroom_cpu`` / ``headroom_mem`` — capacity minus that peak, i.e. the
  spare room bin-packing comparators score against.

The verdict is truthy exactly when feasible, so ``if state.probe(vm):``
reads like the old ``if state.fits(vm):``. Peaks and headroom describe the
committed load scanned up to the point the verdict was decided; they are
complete (cover the whole interval) whenever ``feasible`` is true.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Feasibility"]


class Feasibility(NamedTuple):
    """Outcome of probing one VM against one server's committed load."""

    #: Whether the VM fits throughout its interval (capacity only; placement
    #: constraints are layered on by the allocator).
    feasible: bool
    #: Failing constraint when infeasible (see module docstring); ``None``
    #: when feasible.
    reason: str | None
    #: Max committed CPU during the VM's interval.
    peak_cpu: float
    #: Max committed memory during the VM's interval.
    peak_mem: float
    #: ``cpu_capacity - peak_cpu``.
    headroom_cpu: float
    #: ``memory_capacity - peak_mem``.
    headroom_mem: float

    def __bool__(self) -> bool:
        return self.feasible
