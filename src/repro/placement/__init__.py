"""The placement engine: sparse occupancy indexes and feasibility probes.

This package holds the data structures behind ``ServerState.probe`` — the
single entry point every allocator uses to test a candidate server:

* :class:`~repro.placement.feasibility.Feasibility` — the unified verdict
  (feasible flag, failing constraint, peak usage, headroom);
* :class:`~repro.placement.occupancy.SkylineOccupancy` /
  :class:`~repro.placement.occupancy.DenseOccupancy` — the sparse
  change-point index and the dense numpy oracle it is tested against;
* :class:`~repro.placement.index.CandidateIndex` — fleet-level static
  pruning by server type.

See ``docs/api.md`` ("Placement engine") for the replacements of the
removed ``fits`` / ``fit_reason`` / ``peak_usage`` methods.
"""

from repro.placement.feasibility import Feasibility
from repro.placement.index import CandidateIndex
from repro.placement.occupancy import (
    DEFAULT_ENGINE,
    ENGINES,
    DenseOccupancy,
    SkylineOccupancy,
    make_occupancy,
)
from repro.placement.sharding import ShardedFleet, shard_bounds

__all__ = [
    "Feasibility",
    "CandidateIndex",
    "SkylineOccupancy",
    "DenseOccupancy",
    "ShardedFleet",
    "make_occupancy",
    "shard_bounds",
    "ENGINES",
    "DEFAULT_ENGINE",
]
