"""The placement engine: sparse occupancy indexes and feasibility probes.

This package holds the data structures behind ``ServerState.probe`` — the
single entry point every allocator uses to test a candidate server:

* :class:`~repro.placement.feasibility.Feasibility` — the unified verdict
  (feasible flag, failing constraint, peak usage, headroom);
* :class:`~repro.placement.occupancy.SkylineOccupancy` /
  :class:`~repro.placement.occupancy.DenseOccupancy` — the sparse
  change-point index and the dense numpy oracle it is tested against;
* :class:`~repro.placement.index.CandidateIndex` — fleet-level static
  pruning by server type, with incremental per-type candidate queues;
* :class:`~repro.placement.kernels.FleetKernel` /
  :class:`~repro.placement.kernels.FeasibilityBatch` — the vectorized
  batch probe over a structure-of-arrays mirror of the fleet's
  skylines;
* :class:`~repro.placement.config.EngineConfig` — the frozen
  engine/kernel/shards choice accepted wherever the old engine string
  was.

See ``docs/api.md`` ("Placement engine") for the replacements of the
removed ``fits`` / ``fit_reason`` / ``peak_usage`` methods.
"""

from repro.placement.config import EngineConfig
from repro.placement.feasibility import Feasibility
from repro.placement.index import CandidateIndex
from repro.placement.kernels import FeasibilityBatch, FleetKernel
from repro.placement.occupancy import (
    DEFAULT_ENGINE,
    ENGINES,
    DenseOccupancy,
    SkylineOccupancy,
    make_occupancy,
)
from repro.placement.sharding import ShardedFleet, shard_bounds

__all__ = [
    "EngineConfig",
    "Feasibility",
    "FeasibilityBatch",
    "FleetKernel",
    "CandidateIndex",
    "SkylineOccupancy",
    "DenseOccupancy",
    "ShardedFleet",
    "make_occupancy",
    "shard_bounds",
    "ENGINES",
    "DEFAULT_ENGINE",
]
