"""Busy/idle segment decomposition of a server's timeline (paper Fig. 1).

Given the VMs hosted on a server over the planning period, the server's
timeline decomposes into alternating *busy segments* — maximal runs of time
units during which at least one VM runs — and *idle segments*, the gaps
strictly between consecutive busy segments. Time before the first and after
the last busy segment is spent in the power-saving state by assumption
(``y_i,0 = y_i,T+1 = 0``), so it belongs to neither kind of segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.model.intervals import TimeInterval, gaps_between, merge_intervals
from repro.model.vm import VM

__all__ = ["ServerTimeline", "busy_segments", "idle_segments",
           "timeline_of"]


def busy_segments(vms: Iterable[VM]) -> list[TimeInterval]:
    """Maximal intervals during which at least one of ``vms`` runs.

    Back-to-back VM intervals (one ends at ``t``, another starts at
    ``t + 1``) form a single busy segment: there is no idle time unit
    between them to sleep or idle through.
    """
    return merge_intervals(vm.interval for vm in vms)


def idle_segments(vms: Iterable[VM]) -> list[TimeInterval]:
    """Gaps strictly between the busy segments of ``vms``."""
    return gaps_between([vm.interval for vm in vms])


@dataclass(frozen=True)
class ServerTimeline:
    """One server's alternating busy/idle decomposition."""

    busy: tuple[TimeInterval, ...]
    idle: tuple[TimeInterval, ...]

    @property
    def busy_length(self) -> int:
        """Total time units inside busy segments."""
        return sum(seg.length for seg in self.busy)

    @property
    def idle_length(self) -> int:
        """Total time units inside idle gaps."""
        return sum(seg.length for seg in self.idle)

    @property
    def span(self) -> TimeInterval | None:
        """From first busy start to last busy end; ``None`` when unused."""
        if not self.busy:
            return None
        return TimeInterval(self.busy[0].start, self.busy[-1].end)

    def is_busy_at(self, t: int) -> bool:
        return any(seg.contains(t) for seg in self.busy)

    def is_idle_at(self, t: int) -> bool:
        return any(seg.contains(t) for seg in self.idle)


def timeline_of(vms: Sequence[VM]) -> ServerTimeline:
    """The busy/idle decomposition of a server hosting ``vms``."""
    busy = busy_segments(vms)
    idle = gaps_between(busy)
    return ServerTimeline(busy=tuple(busy), idle=tuple(idle))
