"""Electricity tariffs: from watt-minutes to money.

The paper minimises energy; operators pay *bills*, and bills depend on
when the power is drawn. A :class:`Tariff` maps each time unit to a price
per watt-time-unit; :func:`monetary_cost` integrates a plan's simulated
power series against it. Time-of-use tariffs reveal an effect pure energy
metrics hide: two plans with equal energy can differ in cost when one
concentrates load in peak-price hours.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.energy.cost import SleepPolicy
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation

if TYPE_CHECKING:  # import-time cycle guard; see monetary_cost
    from repro.simulation.telemetry import Telemetry

__all__ = ["Tariff", "FlatTariff", "TimeOfUseTariff", "monetary_cost"]


class Tariff(abc.ABC):
    """Price per watt-time-unit as a function of the time unit."""

    @abc.abstractmethod
    def price_at(self, t: int) -> float:
        """Price during time unit ``t`` (1-based)."""

    def prices(self, horizon: int) -> np.ndarray:
        """Vector of prices for ``t = 1..horizon``."""
        return np.array([self.price_at(t)
                         for t in range(1, horizon + 1)])


@dataclass(frozen=True)
class FlatTariff(Tariff):
    """One price at all times."""

    price: float

    def __post_init__(self) -> None:
        if self.price < 0:
            raise ValidationError(f"price must be >= 0, got {self.price}")

    def price_at(self, t: int) -> float:
        return self.price


@dataclass(frozen=True)
class TimeOfUseTariff(Tariff):
    """A repeating day with a peak-price window.

    Time units ``[peak_start, peak_end]`` (within each period, 1-based)
    cost ``peak_price``; the rest cost ``offpeak_price``.
    """

    peak_price: float
    offpeak_price: float
    peak_start: int = 481     # 08:00 with minute units
    peak_end: int = 1200      # 20:00
    period: int = 1440        # one day

    def __post_init__(self) -> None:
        if self.peak_price < 0 or self.offpeak_price < 0:
            raise ValidationError("prices must be >= 0")
        if self.period < 1:
            raise ValidationError(
                f"period must be >= 1, got {self.period}")
        if not 1 <= self.peak_start <= self.peak_end <= self.period:
            raise ValidationError(
                f"peak window [{self.peak_start}, {self.peak_end}] must "
                f"lie within [1, {self.period}]")

    def price_at(self, t: int) -> float:
        if t < 1:
            raise ValidationError(f"time units are 1-based, got {t}")
        phase = (t - 1) % self.period + 1
        if self.peak_start <= phase <= self.peak_end:
            return self.peak_price
        return self.offpeak_price


def monetary_cost(plan: "Allocation | Telemetry", tariff: Tariff, *,
                  policy: SleepPolicy = SleepPolicy.OPTIMAL) -> float:
    """The bill for a plan (or a pre-computed power series).

    An :class:`Allocation` is replayed through the simulator to obtain
    its per-time-unit power; transition energy is billed at the price of
    the wake-up's time unit (each wake happens at the start of an active
    interval).
    """
    # Imported here, not at module scope: energy is a lower layer than
    # simulation, and a module-level import would be circular.
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.telemetry import Telemetry

    if isinstance(plan, Telemetry):
        telemetry = plan
        wake_bill = 0.0
    else:
        engine = SimulationEngine(plan.cluster, policy=policy)
        result = engine.replay(plan)
        telemetry = result.telemetry
        wake_bill = 0.0
        for server_report in result.report.servers:
            alpha = plan.cluster.server(
                server_report.server_id).spec.transition_cost
            for interval in server_report.active:
                wake_bill += alpha * tariff.price_at(interval.start)
    prices = tariff.prices(telemetry.horizon)
    return float(np.dot(telemetry.power, prices)) + wake_bill
