"""Online (timeout-based) sleep policy — the realism gap of Eq. 16.

The paper's gap rule ``min(P_idle * len, alpha)`` is clairvoyant: it
assumes the server knows how long an idle gap will last. A real server
does not; the standard online policy sleeps after a fixed *idle timeout*.
This module evaluates a finished plan under that policy:

* gap shorter than or equal to the timeout — the server idles through it
  (it never got to sleep): cost ``P_idle * len``;
* longer gap — it idles for ``timeout`` units, sleeps, and pays one
  wake-up at the gap's end: cost ``P_idle * timeout + alpha``.

The classic competitive-analysis result (the ski-rental problem) says the
best timeout is ``alpha / P_idle``, achieving at most 2x the clairvoyant
cost per gap; :func:`timeout_energy` lets the benches verify how close
the practical policy sits on this workload family.
"""

from __future__ import annotations

from repro.energy.accounting import energy_report
from repro.exceptions import ValidationError
from repro.model.allocation import Allocation

__all__ = ["timeout_energy", "best_timeout"]


def best_timeout(p_idle: float, transition_cost: float) -> float:
    """The ski-rental timeout: idle exactly ``alpha`` worth of power."""
    if p_idle <= 0:
        raise ValidationError(f"p_idle must be positive, got {p_idle}")
    return transition_cost / p_idle


def timeout_energy(allocation: Allocation, timeout: float | None = None
                   ) -> float:
    """Energy of ``allocation`` under the online timeout sleep policy.

    ``timeout`` is in time units; ``None`` uses each server's ski-rental
    timeout ``alpha_i / P_idle_i``. Run cost, busy idle-power and the
    initial wake are identical to the clairvoyant accounting — only the
    per-gap decision changes.
    """
    if timeout is not None and timeout < 0:
        raise ValidationError(
            f"timeout must be non-negative, got {timeout}")
    report = energy_report(allocation)
    total = 0.0
    for server_report in report.servers:
        spec = allocation.cluster.server(server_report.server_id).spec
        server_timeout = timeout if timeout is not None else \
            best_timeout(spec.p_idle, spec.transition_cost)
        cost = server_report.cost
        total += cost.run + cost.busy_idle + cost.initial_wake
        for gap in server_report.timeline.idle:
            if gap.length <= server_timeout:
                total += spec.p_idle * gap.length
            else:
                total += spec.p_idle * server_timeout + \
                    spec.transition_cost
    return total
