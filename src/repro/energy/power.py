"""Power models (Eq. 1-3 of the paper).

The paper models a server's active power as an affine function of CPU load,
``P(u) = P_idle + (P_peak - P_idle) u`` (Eq. 1), which makes the marginal
power of one compute unit a constant ``P^1_i`` (Eq. 2) and lets the energy a
VM consumes on a server be computed independently of co-located VMs
(Eq. 3). :class:`AffinePowerModel` implements exactly this; the
:class:`PowerModel` base class exists so extensions (e.g. super-linear
curves) can plug into the discrete-event simulator's power integration.
"""

from __future__ import annotations

import abc

from repro.exceptions import ValidationError
from repro.model.server import ServerSpec
from repro.model.vm import VM

__all__ = ["PowerModel", "AffinePowerModel", "run_energy"]


class PowerModel(abc.ABC):
    """Maps (server spec, CPU in use) to instantaneous power in watts."""

    @abc.abstractmethod
    def active_power(self, spec: ServerSpec, cpu_used: float) -> float:
        """Power drawn while active with ``cpu_used`` compute units busy."""

    def idle_power(self, spec: ServerSpec) -> float:
        """Power drawn while active with no load."""
        return self.active_power(spec, 0.0)


class AffinePowerModel(PowerModel):
    """The paper's affine model (Eq. 1): linear between idle and peak."""

    def active_power(self, spec: ServerSpec, cpu_used: float) -> float:
        return spec.power_at_load(cpu_used)


def run_energy(spec: ServerSpec, vm: VM) -> float:
    """``W_ij``: energy of running one VM on one server type (Eq. 3).

    With the affine model the marginal cost of a VM is separable:
    ``W_ij = P^1_i * sum_t R^CPU_jt = P^1_i * cpu * duration``.
    """
    if not (vm.cpu <= spec.cpu_capacity and vm.memory <=
            spec.memory_capacity):
        raise ValidationError(
            f"{vm} can never fit on server type {spec.name!r} "
            f"({spec.cpu_capacity}cu/{spec.memory_capacity}GB)")
    return spec.power_per_cpu_unit * vm.cpu_time
