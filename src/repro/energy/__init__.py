"""Energy substrate: power models, segment decomposition, cost accounting."""

from repro.energy.accounting import (
    EnergyReport,
    ServerReport,
    active_intervals,
    energy_report,
    transition_count,
)
from repro.energy.cost import (
    CostBreakdown,
    SleepPolicy,
    allocation_cost,
    gap_cost,
    server_cost,
    sleeps_through,
)
from repro.energy.power import AffinePowerModel, PowerModel, run_energy
from repro.energy.pricing import (
    FlatTariff,
    Tariff,
    TimeOfUseTariff,
    monetary_cost,
)
from repro.energy.timeout import best_timeout, timeout_energy
from repro.energy.segments import (
    ServerTimeline,
    busy_segments,
    idle_segments,
    timeline_of,
)

__all__ = [
    "EnergyReport",
    "ServerReport",
    "active_intervals",
    "energy_report",
    "transition_count",
    "CostBreakdown",
    "SleepPolicy",
    "allocation_cost",
    "gap_cost",
    "server_cost",
    "sleeps_through",
    "AffinePowerModel",
    "PowerModel",
    "run_energy",
    "FlatTariff",
    "Tariff",
    "TimeOfUseTariff",
    "monetary_cost",
    "best_timeout",
    "timeout_energy",
    "ServerTimeline",
    "busy_segments",
    "idle_segments",
    "timeline_of",
]
