"""Per-server and per-allocation energy cost (Eq. 15-17 of the paper).

The cost of a server hosting a set of VMs over the planning period has four
components:

* **run cost** — ``sum_j W_ij``, the marginal energy of the VMs (Eq. 3/15);
* **busy idle-power** — ``P_idle * total_busy_length``, keeping the server
  active while it hosts anything (Eq. 15);
* **gap cost** — for every idle gap, the cheaper of staying active
  (``P_idle * gap_length``) or sleeping through it and paying one wake-up
  (``alpha``) (Eq. 16);
* **initial wake** — one ``alpha`` to leave the power-saving state at the
  first busy segment. The OCR'd Eq. (17) omits this term but the ILP
  objective charges every 0->1 transition of ``y_it`` including the first
  (``y_i,0 = 0``); see DESIGN.md. It is applied identically to every
  algorithm, so comparisons are unaffected by the convention.

The gap decision is also exposed as a :class:`SleepPolicy` so ablations can
measure the value of the ``min(idle, alpha)`` rule against never/always
sleeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.energy.power import run_energy
from repro.energy.segments import ServerTimeline, timeline_of
from repro.model.allocation import Allocation
from repro.model.intervals import TimeInterval
from repro.model.server import ServerSpec
from repro.model.vm import VM

__all__ = ["SleepPolicy", "CostBreakdown", "server_cost",
           "allocation_cost", "gap_cost", "sleeps_through"]


class SleepPolicy(enum.Enum):
    """How a server treats an idle gap between two busy segments."""

    #: Sleep iff cheaper: ``min(P_idle * len, alpha)`` — the paper's rule.
    OPTIMAL = "optimal"
    #: Stay active through every gap (pay ``P_idle * len``).
    NEVER_SLEEP = "never-sleep"
    #: Sleep through every gap (pay ``alpha`` regardless of gap length).
    ALWAYS_SLEEP = "always-sleep"


def sleeps_through(spec: ServerSpec, gap: TimeInterval,
                   policy: SleepPolicy = SleepPolicy.OPTIMAL) -> bool:
    """Whether the server powers down for ``gap`` under ``policy``."""
    if policy is SleepPolicy.NEVER_SLEEP:
        return False
    if policy is SleepPolicy.ALWAYS_SLEEP:
        return True
    return spec.transition_cost < spec.p_idle * gap.length


def gap_cost(spec: ServerSpec, gap: TimeInterval,
             policy: SleepPolicy = SleepPolicy.OPTIMAL) -> float:
    """Energy spent over one idle gap under the given sleep policy."""
    if sleeps_through(spec, gap, policy):
        return spec.transition_cost
    return spec.p_idle * gap.length


@dataclass(frozen=True)
class CostBreakdown:
    """Energy of one server over the planning period, by component."""

    run: float
    busy_idle: float
    gaps: float
    initial_wake: float

    @property
    def total(self) -> float:
        return self.run + self.busy_idle + self.gaps + self.initial_wake

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            run=self.run + other.run,
            busy_idle=self.busy_idle + other.busy_idle,
            gaps=self.gaps + other.gaps,
            initial_wake=self.initial_wake + other.initial_wake,
        )


_ZERO = CostBreakdown(0.0, 0.0, 0.0, 0.0)


def server_cost(spec: ServerSpec, vms: Sequence[VM], *,
                policy: SleepPolicy = SleepPolicy.OPTIMAL,
                include_initial_wake: bool = True,
                timeline: ServerTimeline | None = None) -> CostBreakdown:
    """Eq.-17 energy of one server hosting ``vms``.

    ``timeline`` may be supplied when the caller has already decomposed the
    busy/idle segments (the incremental-cost heuristic evaluates many
    candidate placements and caches timelines).
    """
    if not vms:
        return _ZERO
    if timeline is None:
        timeline = timeline_of(vms)
    run = sum(run_energy(spec, vm) for vm in vms)
    busy_idle = spec.p_idle * timeline.busy_length
    gaps = sum(gap_cost(spec, gap, policy) for gap in timeline.idle)
    wake = spec.transition_cost if include_initial_wake else 0.0
    return CostBreakdown(run=run, busy_idle=busy_idle, gaps=gaps,
                         initial_wake=wake)


def allocation_cost(allocation: Allocation, *,
                    policy: SleepPolicy = SleepPolicy.OPTIMAL,
                    include_initial_wake: bool = True) -> CostBreakdown:
    """Total fleet energy of an allocation (the paper's objective, Eq. 7)."""
    total = _ZERO
    for server_id in allocation.used_servers():
        spec = allocation.cluster.server(server_id).spec
        total = total + server_cost(
            spec, allocation.vms_on(server_id), policy=policy,
            include_initial_wake=include_initial_wake)
    return total
