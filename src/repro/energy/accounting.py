"""Fleet-level energy reports and active-timeline derivation.

Beyond the scalar Eq.-17 cost, the experiments and the exact-solver
cross-checks need the *server state trajectory* an allocation implies: for
every server, which time units it is active (the ``y_it`` variables of the
ILP) and how many power-saving -> active transitions occur. This module
derives that trajectory from the busy/idle decomposition plus the sleep
policy, and packages per-server and fleet-level reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cost import (
    CostBreakdown,
    SleepPolicy,
    server_cost,
)
from repro.energy.segments import ServerTimeline, timeline_of
from repro.model.allocation import Allocation
from repro.model.intervals import TimeInterval, merge_intervals

__all__ = ["ServerReport", "EnergyReport", "active_intervals",
           "transition_count", "energy_report"]


def active_intervals(timeline: ServerTimeline, spec_transition_cost: float,
                     p_idle: float,
                     policy: SleepPolicy = SleepPolicy.OPTIMAL
                     ) -> list[TimeInterval]:
    """Time intervals during which the server is in the active state.

    A server is active through every busy segment and through every idle
    gap it does *not* sleep through; sleeping splits the active span.
    """
    if not timeline.busy:
        return []
    pieces: list[TimeInterval] = list(timeline.busy)
    for gap in timeline.idle:
        stays_active = not _gap_sleeps(spec_transition_cost, p_idle, gap,
                                       policy)
        if stays_active:
            pieces.append(gap)
    return merge_intervals(pieces)


def _gap_sleeps(transition_cost: float, p_idle: float, gap: TimeInterval,
                policy: SleepPolicy) -> bool:
    if policy is SleepPolicy.NEVER_SLEEP:
        return False
    if policy is SleepPolicy.ALWAYS_SLEEP:
        return True
    return transition_cost < p_idle * gap.length


def transition_count(timeline: ServerTimeline, spec_transition_cost: float,
                     p_idle: float,
                     policy: SleepPolicy = SleepPolicy.OPTIMAL) -> int:
    """Number of power-saving -> active transitions (each costs alpha).

    One initial wake-up plus one per slept-through gap.
    """
    if not timeline.busy:
        return 0
    wakes = 1
    for gap in timeline.idle:
        if _gap_sleeps(spec_transition_cost, p_idle, gap, policy):
            wakes += 1
    return wakes


@dataclass(frozen=True)
class ServerReport:
    """Energy and state statistics for one server."""

    server_id: int
    spec_name: str
    vm_count: int
    cost: CostBreakdown
    timeline: ServerTimeline
    active: tuple[TimeInterval, ...]
    transitions: int

    @property
    def active_length(self) -> int:
        """Total time units spent in the active state."""
        return sum(iv.length for iv in self.active)


@dataclass(frozen=True)
class EnergyReport:
    """Fleet-level energy report for a complete allocation."""

    servers: tuple[ServerReport, ...]
    total: CostBreakdown
    policy: SleepPolicy

    @property
    def total_energy(self) -> float:
        return self.total.total

    @property
    def servers_used(self) -> int:
        return len(self.servers)

    @property
    def total_transitions(self) -> int:
        return sum(r.transitions for r in self.servers)

    def by_server(self) -> dict[int, ServerReport]:
        return {r.server_id: r for r in self.servers}


def energy_report(allocation: Allocation, *,
                  policy: SleepPolicy = SleepPolicy.OPTIMAL,
                  include_initial_wake: bool = True) -> EnergyReport:
    """Build the full per-server report for an allocation."""
    reports: list[ServerReport] = []
    total = CostBreakdown(0.0, 0.0, 0.0, 0.0)
    for server_id in allocation.used_servers():
        server = allocation.cluster.server(server_id)
        vms = allocation.vms_on(server_id)
        timeline = timeline_of(vms)
        cost = server_cost(server.spec, vms, policy=policy,
                           include_initial_wake=include_initial_wake,
                           timeline=timeline)
        active = active_intervals(timeline, server.spec.transition_cost,
                                  server.spec.p_idle, policy)
        transitions = transition_count(
            timeline, server.spec.transition_cost, server.spec.p_idle,
            policy)
        reports.append(ServerReport(
            server_id=server_id,
            spec_name=server.spec.name,
            vm_count=len(vms),
            cost=cost,
            timeline=timeline,
            active=tuple(active),
            transitions=transitions,
        ))
        total = total + cost
    return EnergyReport(servers=tuple(reports), total=total, policy=policy)
