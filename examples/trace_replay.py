#!/usr/bin/env python3
"""Trace workflow: persist a workload, reload it, replay it, audit it.

Production capacity studies run on *recorded* traces so results are
reproducible and shareable. This example shows the full trace lifecycle:

1. generate a workload and save it as CSV (the interchange format);
2. reload it and verify the round trip;
3. allocate it and replay the plan through the discrete-event simulator;
4. audit the per-server energy report (top consumers, wake-up counts),
   cross-checking the simulator's integrated energy against the paper's
   analytic Eq.-17 accounting.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import (
    Cluster,
    MinIncrementalEnergy,
    SimulationEngine,
    Trace,
    generate_vms,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "workload.csv"

    # 1. Record a trace.
    vms = generate_vms(250, mean_interarrival=3.0, mean_duration=6.0,
                       seed=2024)
    Trace.from_vms(vms, seed=2024).save_csv(trace_path)
    print(f"saved {len(vms)} VMs to {trace_path}")

    # 2. Reload and verify.
    trace = Trace.load_csv(trace_path)
    assert len(trace) == len(vms)
    print(f"reloaded trace horizon: {trace.horizon} min")

    # 3. Allocate and replay.
    cluster = Cluster.paper_all_types(120)
    plan = MinIncrementalEnergy().allocate(list(trace), cluster)
    result = SimulationEngine(cluster).replay(plan)
    print(f"\nsimulated energy:  {result.total_energy / 1000:10.1f} kW·min")
    print(f"analytic (Eq. 17): {result.report.total_energy / 1000:10.1f} "
          f"kW·min (must match)")
    assert abs(result.total_energy - result.report.total_energy) < 1e-6

    # 4. Audit: which servers do the work, and how often do they wake?
    servers = sorted(result.report.servers,
                     key=lambda r: r.cost.total, reverse=True)
    print(f"\n{len(servers)} servers used of {len(cluster)}; top five:")
    print(f"  {'server':>8} {'type':>6} {'vms':>4} {'energy':>10} "
          f"{'wakes':>5} {'active min':>10}")
    for report in servers[:5]:
        print(f"  {report.server_id:>8} {report.spec_name:>6} "
              f"{report.vm_count:>4} {report.cost.total:>10.0f} "
              f"{report.transitions:>5} {report.active_length:>10}")

    share = sum(r.cost.total for r in servers[:5]) \
        / result.report.total_energy
    print(f"\ntop five servers carry {100 * share:.0f} % of fleet energy")


if __name__ == "__main__":
    main()
