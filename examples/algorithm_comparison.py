#!/usr/bin/env python3
"""Compare every allocation algorithm across traffic patterns.

The paper evaluates only Poisson traffic; a practitioner choosing an
allocator wants to know whether the heuristic's advantage survives the
burstier, heavier-tailed traffic real clouds see. This example runs the
whole algorithm zoo over three workload families and, for small
instances, anchors everything against the exact ILP optimum.

Run:  python examples/algorithm_comparison.py
"""

from repro import (
    Cluster,
    allocation_cost,
    allocator_names,
    make_allocator,
    solve_ilp,
)
from repro.experiments import format_table
from repro.workload import (
    BurstyWorkload,
    HeavyTailWorkload,
    PoissonWorkload,
)

SEEDS = (0, 1, 2)
N_VMS = 150

FAMILIES = {
    "poisson": PoissonWorkload(mean_interarrival=4.0, mean_duration=5.0),
    "bursty": BurstyWorkload(burst_interarrival=0.5, calm_interarrival=8.0,
                             mean_duration=5.0),
    "heavy-tail": HeavyTailWorkload(mean_interarrival=4.0,
                                    mean_duration=5.0, shape=1.5),
}


def mean_energy(workload, algo: str) -> float:
    total = 0.0
    for seed in SEEDS:
        vms = workload.generate(N_VMS, rng=seed)
        cluster = Cluster.paper_all_types(N_VMS // 2)
        allocation = make_allocator(algo, seed=seed).allocate(vms, cluster)
        total += allocation_cost(allocation).total
    return total / len(SEEDS)


def main() -> None:
    algorithms = allocator_names()
    rows = []
    baselines = {name: mean_energy(wl, "ffps")
                 for name, wl in FAMILIES.items()}
    for algo in algorithms:
        row: list[object] = [algo]
        for name, workload in FAMILIES.items():
            energy = mean_energy(workload, algo)
            row.append(round(100 * (baselines[name] - energy)
                             / baselines[name], 1))
        rows.append(tuple(row))
    rows.sort(key=lambda r: r[1], reverse=True)
    print("energy reduction vs FFPS (%), by traffic family:\n")
    print(format_table(("algorithm",) + tuple(FAMILIES), rows))

    # Anchor against the exact optimum on a small instance.
    print("\nexact-optimum anchor (10 VMs, 5 servers, Poisson):")
    small = PoissonWorkload(mean_interarrival=2.0, mean_duration=5.0)
    vms = small.generate(10, rng=0)
    cluster = Cluster.paper_all_types(5)
    optimal = solve_ilp(vms, cluster).objective
    for algo in ("min-energy", "ffps", "best-fit"):
        cost = allocation_cost(
            make_allocator(algo, seed=0).allocate(vms, cluster)).total
        print(f"  {algo:11s} {cost:10.0f} W·min "
              f"(+{100 * (cost - optimal) / optimal:5.1f} % over optimal)")
    print(f"  {'optimal':11s} {optimal:10.0f} W·min")


if __name__ == "__main__":
    main()
