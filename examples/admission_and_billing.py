#!/usr/bin/env python3
"""Admission control and the electricity bill on an undersized fleet.

The paper sizes fleets generously (half the VM count). This example asks
the operator's opposite question: *how small can the fleet go, and what
does the service degradation and the bill look like?* It

1. runs a bursty workload through admission control on shrinking fleets,
   reporting rejection rates and queueing delay (with and without the
   option to defer requests);
2. prices the accepted plan under flat and time-of-use tariffs, showing
   how a peak-heavy workload inflates the bill beyond what energy alone
   suggests.

Run:  python examples/admission_and_billing.py
"""

from repro import BurstyWorkload, Cluster
from repro.energy import FlatTariff, TimeOfUseTariff, monetary_cost
from repro.simulation import AdmissionController


def main() -> None:
    workload = BurstyWorkload(burst_interarrival=0.3,
                              calm_interarrival=6.0,
                              mean_phase_length=25.0,
                              mean_duration=8.0)
    vms = workload.generate(400, rng=11)
    horizon = max(vm.end for vm in vms)
    print(f"bursty workload: {len(vms)} VMs over {horizon} min\n")

    print(f"{'fleet':>6} {'policy':>10} {'accepted':>9} {'rejected':>9} "
          f"{'mean delay':>11} {'energy':>10}")
    for size in (60, 30, 15, 8):
        cluster = Cluster.paper_all_types(size)
        for label, controller in (
                ("reject", AdmissionController()),
                ("defer<=30", AdmissionController(max_delay=30))):
            outcome = controller.run(vms, cluster)
            print(f"{size:>6} {label:>10} {outcome.accepted:>9} "
                  f"{len(outcome.rejected):>9} "
                  f"{outcome.mean_delay:>11.2f} "
                  f"{outcome.total_energy:>10.0f}")

    # Billing study on a comfortably-sized fleet.
    cluster = Cluster.paper_all_types(60)
    outcome = AdmissionController().run(vms, cluster)
    plan = outcome.allocation
    flat = FlatTariff(1.0)
    # Peak window covering the first two-thirds of the trace's day.
    tou = TimeOfUseTariff(peak_price=1.8, offpeak_price=0.6,
                          peak_start=1, peak_end=2 * horizon // 3,
                          period=horizon)
    print(f"\nbilling the accepted plan ({outcome.accepted} VMs):")
    print(f"  flat tariff (1.0/Wmin):        {monetary_cost(plan, flat):12.0f}")
    print(f"  time-of-use (1.8 peak / 0.6):  {monetary_cost(plan, tou):12.0f}")
    print("\nreading: deferral converts rejections into short queueing "
          "delays until\nthe fleet is far too small; under time-of-use "
          "pricing the bill diverges\nfrom raw energy whenever load "
          "concentrates in the peak window.")


if __name__ == "__main__":
    main()
