#!/usr/bin/env python3
"""Capacity planning: how many servers does a diurnal workload need?

A cloud operator wants to size a fleet for a day of traffic with a strong
day/night cycle — the scenario the paper's introduction motivates (turn
servers off at night, save energy). This example:

1. generates a diurnal workload (sinusoidally modulated Poisson arrivals)
   over a simulated day;
2. allocates it with the paper's heuristic onto fleets of decreasing
   size, finding the smallest feasible fleet;
3. replays the chosen plan through the discrete-event simulator and
   prints the fleet's power profile through the day — showing how the
   heuristic powers servers down during the night trough.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    Cluster,
    MinIncrementalEnergy,
    DiurnalWorkload,
    SimulationEngine,
)
from repro.analysis import minimum_feasible_size


def main() -> None:
    # One simulated day at minute granularity: arrivals peak mid-period
    # and trough at night (amplitude 0.9 -> 19x rate swing).
    day = 1440
    workload = DiurnalWorkload(base_interarrival=1.5, period=day,
                               amplitude=0.9, mean_duration=8.0)
    vms = workload.generate(900, rng=7)
    print(f"workload: {len(vms)} VMs across ~{max(v.end for v in vms)} min")

    size = minimum_feasible_size(vms)
    cluster = Cluster.paper_all_types(size)
    plan = MinIncrementalEnergy().allocate(vms, cluster)
    print(f"smallest feasible fleet: {size} servers "
          f"(of {cluster.spec_counts()})")

    result = SimulationEngine(cluster).replay(plan)
    print(f"total energy: {result.total_energy / 1000:.1f} kW·min, "
          f"peak draw {result.telemetry.peak_power / 1000:.2f} kW")

    # Average fleet power per two-hour bucket: the diurnal shape should
    # be visible — high at the traffic peak, near zero in the trough.
    power = result.telemetry.power
    print("\nfleet power by 2-hour bucket (W):")
    bucket = 120
    for start in range(0, min(len(power), day), bucket):
        window = power[start:start + bucket]
        bar = "#" * int(np.mean(window) / 100)
        print(f"  {start // 60:02d}:00-{(start + bucket) // 60:02d}:00  "
              f"{np.mean(window):8.0f}  {bar}")

    active = result.telemetry.active_servers
    print(f"\nactive servers: peak {active.max()}, "
          f"mean {active.mean():.1f} of {len(cluster)} "
          f"(the rest stay in the power-saving state)")


if __name__ == "__main__":
    main()
