#!/usr/bin/env python3
"""What-if planning: traffic growth studies on a recorded trace.

An operator has a recorded trace and asks: *what happens to the
electricity bill if traffic grows 50 %? 100 %? if jobs get twice as
long?* This example answers with the library's trace transforms, the
instant lower bound, and seed-free deterministic re-planning:

1. record a baseline trace;
2. derive growth scenarios with ``scale_load`` / ``scale_time``;
3. for each scenario: check peak demand against fleet capacity, compute
   the combinatorial lower bound, and plan with the heuristic;
4. report the bill and how close the plan sits to the bound.

Run:  python examples/what_if_planning.py
"""

from repro import Cluster, MinIncrementalEnergy, generate_vms
from repro.analysis import concurrency_profile, energy_lower_bound
from repro.energy import allocation_cost
from repro.workload import scale_load, scale_time

SCENARIOS = (
    ("baseline", lambda vms: vms),
    ("+50% traffic", lambda vms: scale_load(vms, 1.5, seed=1)),
    ("2x traffic", lambda vms: scale_load(vms, 2.0, seed=1)),
    ("2x job length", lambda vms: scale_time(vms, 2.0)),
    ("2x traffic, half length", lambda vms: scale_time(
        scale_load(vms, 2.0, seed=1), 0.5)),
)


def main() -> None:
    baseline = generate_vms(400, mean_interarrival=2.0, mean_duration=6.0,
                            seed=7)
    cluster = Cluster.paper_all_types(200)
    print(f"fleet: {len(cluster)} servers, "
          f"{cluster.total_cpu_capacity:.0f} cu / "
          f"{cluster.total_memory_capacity:.0f} GB\n")
    print(f"{'scenario':>24} {'VMs':>5} {'peak cu':>8} {'bound':>9} "
          f"{'plan':>9} {'gap':>6}")
    base_cost = None
    for label, transform in SCENARIOS:
        vms = transform(baseline)
        profile = concurrency_profile(vms)
        if profile.peak_cpu > cluster.total_cpu_capacity:
            print(f"{label:>24} {len(vms):>5} {profile.peak_cpu:>8.0f} "
                  f"{'does not fit this fleet':>26}")
            continue
        bound = energy_lower_bound(vms, cluster)
        plan = MinIncrementalEnergy().allocate(vms, cluster)
        cost = allocation_cost(plan).total
        if base_cost is None:
            base_cost = cost
        print(f"{label:>24} {len(vms):>5} {profile.peak_cpu:>8.0f} "
              f"{bound.total:>9.0f} {cost:>9.0f} "
              f"{100 * bound.gap_of(cost):>5.0f}%")
    print("\nreading: the bill grows sub-linearly with traffic (better "
          "consolidation\nat higher load) and the heuristic tracks the "
          "lower bound's trend.")


if __name__ == "__main__":
    main()
