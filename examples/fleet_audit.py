#!/usr/bin/env python3
"""Fleet audit: characterise a trace, diagnose the plan, check the bound.

The operator workflow after a capacity incident: take the recorded trace,
understand what the traffic *is*, re-plan it, and audit where the energy
goes — including whether the fleet's CPU:memory shape matches the
workload (stranded capacity) and how far the plan sits from the
theoretical floor.

Run:  python examples/fleet_audit.py
"""

from repro import Cluster, MinIncrementalEnergy, generate_vms
from repro.analysis import diagnose, energy_lower_bound
from repro.energy import allocation_cost, timeout_energy
from repro.workload import characterize, synthetic_twin


def main() -> None:
    # The "recorded" trace: memory-heavy traffic.
    from repro.model.catalog import MEMORY_INTENSIVE_VM_TYPES, \
        STANDARD_VM_TYPES

    trace = generate_vms(
        500, mean_interarrival=2.0, mean_duration=7.0,
        vm_types=tuple(STANDARD_VM_TYPES[:2])
        + MEMORY_INTENSIVE_VM_TYPES, seed=21)

    # 1. What is this traffic?
    stats = characterize(trace)
    print("trace characterisation:")
    print("  " + stats.format().replace("\n", "\n  "))

    # 2. Plan it and audit the plan.
    cluster = Cluster.paper_all_types(250)
    plan = MinIncrementalEnergy().allocate(trace, cluster)
    print("\nplan diagnostics:")
    print("  " + diagnose(plan).format().replace("\n", "\n  "))

    # 3. How close to the floor, and what does realism cost?
    bound = energy_lower_bound(trace, cluster)
    clairvoyant = allocation_cost(plan).total
    online = timeout_energy(plan)
    print(f"\nlower bound:        {bound.total:12.0f}")
    print(f"plan (clairvoyant): {clairvoyant:12.0f} "
          f"(+{100 * bound.gap_of(clairvoyant):.0f}% above bound)")
    print(f"plan (online sleep):{online:12.0f} "
          f"(+{100 * (online - clairvoyant) / clairvoyant:.1f}% over "
          f"clairvoyant)")

    # 4. Scale the traffic statistically and re-audit.
    twin = synthetic_twin(stats, count=1000, seed=22)
    twin_plan = MinIncrementalEnergy().allocate(twin, cluster)
    twin_diag = diagnose(twin_plan)
    print(f"\n2x synthetic twin: {twin_diag.servers_used} servers, "
          f"{twin_diag.total_energy:.0f} energy "
          f"({twin_diag.vms_per_used_server:.1f} VMs/server)")
    print("\nreading: memory-heavy traffic strands CPU on active servers "
          "— the\nfleet audit quantifies exactly how much, and the "
          "synthetic twin shows\nthe shape persists at double the load.")


if __name__ == "__main__":
    main()
