#!/usr/bin/env python3
"""Quickstart: allocate a Poisson VM workload and compare energy.

This is the smallest end-to-end use of the library: generate the paper's
workload (Poisson arrivals, exponential lifetimes, EC2-style VM types),
build a mixed fleet of Table II servers, allocate with the paper's
minimum-incremental-energy heuristic and with the FFPS baseline, and
report total energy, the reduction ratio, and fleet utilisation.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    FirstFitPowerSaving,
    MinIncrementalEnergy,
    energy_report,
    energy_reduction_ratio,
    generate_vms,
    utilization_stats,
)


def main() -> None:
    # 1. A workload: 200 VM requests, one arrival every ~4 minutes on
    #    average, ~5-minute lifetimes, all nine Table I types.
    vms = generate_vms(200, mean_interarrival=4.0, mean_duration=5.0,
                       seed=42)
    print(f"workload: {len(vms)} VMs over ~{max(v.end for v in vms)} min")

    # 2. A fleet: 100 servers cycling through the five Table II types.
    cluster = Cluster.paper_all_types(100)
    print(f"fleet:    {len(cluster)} servers {cluster.spec_counts()}")

    # 3. Allocate with both algorithms on the same workload.
    ours = MinIncrementalEnergy().allocate(vms, cluster)
    ffps = FirstFitPowerSaving(seed=0).allocate(vms, cluster)

    # 4. Energy accounting (Eq. 17: run + idle + gaps + wake-ups).
    ours_report = energy_report(ours)
    ffps_report = energy_report(ffps)
    reduction = energy_reduction_ratio(ffps_report.total_energy,
                                       ours_report.total_energy)

    print(f"\nFFPS energy:       {ffps_report.total_energy:12.0f} W·min "
          f"({ffps_report.servers_used} servers, "
          f"{ffps_report.total_transitions} wake-ups)")
    print(f"min-energy:        {ours_report.total_energy:12.0f} W·min "
          f"({ours_report.servers_used} servers, "
          f"{ours_report.total_transitions} wake-ups)")
    print(f"energy reduction:  {100 * reduction:11.1f} %")

    # 5. Utilisation of active servers (the paper's Fig. 3 metric).
    ours_util = utilization_stats(ours)
    ffps_util = utilization_stats(ffps)
    print(f"\nCPU utilisation:   ours {100 * ours_util.cpu:5.1f} %   "
          f"FFPS {100 * ffps_util.cpu:5.1f} %")
    print(f"mem utilisation:   ours {100 * ours_util.memory:5.1f} %   "
          f"FFPS {100 * ffps_util.memory:5.1f} %")


if __name__ == "__main__":
    main()
