#!/usr/bin/env python3
"""Failure drill: how do energy-optimised plans cope with crashes?

Tightly consolidated plans save energy but concentrate blast radius: when
a packed server dies, many VMs die with it. This drill quantifies the
trade-off the paper doesn't discuss:

1. allocate the same workload with the energy heuristic and with
   round-robin spreading;
2. crash the same random servers under both plans;
3. compare VMs killed, recovery rate, wasted energy, and the energy of
   the repaired plans.

Run:  python examples/failure_drill.py
"""

from repro import Cluster, MinIncrementalEnergy, generate_vms, make_allocator
from repro.energy import allocation_cost
from repro.simulation import inject_failures, random_failures


def drill(allocator_name: str, vms, cluster, failures):
    allocator = make_allocator(allocator_name, seed=0)
    plan = allocator.allocate(vms, cluster)
    before = allocation_cost(plan).total
    outcome = inject_failures(plan, failures,
                              recovery=MinIncrementalEnergy())
    return plan, before, outcome


def main() -> None:
    vms = generate_vms(300, mean_interarrival=0.8, mean_duration=15.0,
                       seed=99)
    cluster = Cluster.paper_all_types(60)
    horizon = max(vm.end for vm in vms)
    failures = random_failures(cluster, count=12, horizon=horizon, seed=5)
    print(f"workload: {len(vms)} VMs over {horizon} min; "
          f"injecting {len(failures)} server crashes\n")

    print(f"{'plan':>12} {'energy before':>14} {'killed':>7} "
          f"{'recovered':>9} {'lost':>5} {'wasted':>9} {'energy after':>13}")
    for name in ("min-energy", "round-robin"):
        plan, before, outcome = drill(name, vms, cluster, failures)
        print(f"{name:>12} {before:>14.0f} {outcome.killed:>7} "
              f"{outcome.recovered:>9} {len(outcome.lost):>5} "
              f"{outcome.wasted_energy:>9.0f} "
              f"{outcome.total_energy:>13.0f}")

    print("\nreading: consolidation kills more VMs per crash (bigger "
          "blast radius)\nbut the repaired consolidated plan still burns "
          "far less energy than the\nspread plan did before any failure.")


if __name__ == "__main__":
    main()
