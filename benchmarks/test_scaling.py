"""Extra study: empirical complexity of the allocators.

The paper's Fig. 2 argues the heuristic is scalable (the reduction is
stable as m grows) but never reports *runtime*. This bench measures it:
wall time across instance sizes with a fitted log-log exponent. With
fleets sized at m/2, the heuristic's feasible-set scan gives ~m^1.5-2
growth; FFPS's first-fit scan stays near-linear.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import format_table
from repro.experiments.scaling import measure_scaling

COUNTS = (50, 100, 200, 400, 800)


def run_study():
    return {
        algo: measure_scaling(COUNTS, algorithm=algo, repeats=2)
        for algo in ("min-energy", "ffps")
    }


def test_scaling(benchmark):
    studies = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = []
    for algo, study in studies.items():
        for point in study.points:
            rows.append((algo, point.n_vms,
                         round(point.seconds * 1000, 1)))
        rows.append((algo, "exponent", round(study.exponent, 2)))
    record_result("scaling", format_table(
        ("algorithm", "VMs", "ms (or exponent)"), rows))

    heuristic = studies["min-energy"]
    ffps = studies["ffps"]
    # the heuristic's scan is super-linear but clearly sub-cubic
    assert 1.0 < heuristic.exponent < 3.0
    # FFPS stays cheaper than the heuristic at the largest size
    assert ffps.points[-1].seconds < heuristic.points[-1].seconds
    # and the paper-scale instance (m=1000-ish) stays interactive
    assert heuristic.points[-1].seconds < 10.0
