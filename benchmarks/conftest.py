"""Benchmark-suite infrastructure.

Every benchmark regenerates one table or figure of the paper and registers
its formatted rows through :func:`record_result`. A terminal-summary hook
prints all registered outputs at the end of the run (so the regenerated
series appear in ``pytest benchmarks/ --benchmark-only`` output even with
stdout capture active) and writes them under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

_RESULTS: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).parent.parent


def record_result(name: str, text: str) -> None:
    """Register a regenerated table/figure for the end-of-run report."""
    _RESULTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_json(name: str, payload: dict) -> None:
    """Write a machine-readable summary to ``BENCH_<name>.json`` at the
    repo root.

    The pytest-benchmark ``--benchmark-json`` dumps only ever lived as
    workflow artifacts, which expire — so perf history was invisible
    across PRs. These compact summaries are committed with the change
    that produced them, giving every scale point a tracked trajectory
    in plain git log.
    """
    path = _REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for name, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
