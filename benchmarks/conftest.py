"""Benchmark-suite infrastructure.

Every benchmark regenerates one table or figure of the paper and registers
its formatted rows through :func:`record_result`. A terminal-summary hook
prints all registered outputs at the end of the run (so the regenerated
series appear in ``pytest benchmarks/ --benchmark-only`` output even with
stdout capture active) and writes them under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

_RESULTS: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Register a regenerated table/figure for the end-of-run report."""
    _RESULTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for name, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
