"""Extra study: optimality gap of the heuristic and FFPS vs HiGHS.

Not a paper figure — the paper formulates the ILP but never solves it.
On small instances the exact optimum bounds how much either algorithm
leaves on the table; the heuristic's gap should be well below FFPS's.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import ilp_gap


def test_ilp_gap(benchmark):
    result = benchmark.pedantic(
        ilp_gap, kwargs=dict(n_vms=12, n_servers=6, mean_interarrival=2.0,
                             seeds=(0, 1, 2, 3, 4)),
        rounds=1, iterations=1)
    record_result("ilp_gap", result.format())

    assert result.mean_heuristic_gap_pct >= 0.0
    assert result.mean_ffps_gap_pct >= 0.0
    # the paper's heuristic should sit closer to the optimum than FFPS
    assert result.mean_heuristic_gap_pct < result.mean_ffps_gap_pct
    # and be within a modest band of optimal on these tiny instances
    assert result.mean_heuristic_gap_pct < 25.0
