"""Micro-benchmarks: allocation throughput of the core algorithms.

These use pytest-benchmark's statistics properly (multiple rounds) and
guard the library's performance envelope: the paper's heuristic evaluates
the incremental cost on every feasible server per VM, so it must stay
usable at the paper's 1000-VM scale. The 1000-VM / 300-server point also
pins the indexed placement engine's speedup over the dense oracle — the
contract that justified replacing the numpy timelines with the skyline
index (see ``docs/api.md``, *Placement engine*).
"""

from __future__ import annotations

import time

import pytest

from repro.allocators import make_allocator
from repro.energy import allocation_cost
from repro.ilp import build_problem
from repro.model.cluster import Cluster
from repro.simulation import SimulationEngine
from repro.workload.generator import generate_vms

from conftest import record_json, record_result

VMS = generate_vms(300, mean_interarrival=4.0, seed=0)
CLUSTER = Cluster.paper_all_types(150)

#: The tentpole scale point: 1000 VMs onto 300 servers.
VMS_1K = generate_vms(1000, mean_interarrival=4.0, seed=0)
CLUSTER_300 = Cluster.paper_all_types(300)


@pytest.mark.parametrize("algo", ["min-energy", "ffps", "best-fit"])
def test_allocator_throughput(benchmark, algo):
    allocation = benchmark(
        lambda: make_allocator(algo, seed=0).allocate(VMS, CLUSTER))
    assert len(allocation) == len(VMS)


@pytest.mark.parametrize("algo", ["min-energy", "ffps", "best-fit"])
def test_allocator_throughput_1k(benchmark, algo):
    allocation = benchmark(
        lambda: make_allocator(algo, seed=0).allocate(VMS_1K, CLUSTER_300))
    assert len(allocation) == len(VMS_1K)


def _best_of(engine: str, rounds: int = 3) -> tuple[float, dict[int, int]]:
    best = float("inf")
    placements: dict[int, int] = {}
    for _ in range(rounds):
        allocator = make_allocator("min-energy", seed=0, engine=engine)
        started = time.perf_counter()
        plan = allocator.allocate(VMS_1K, CLUSTER_300)
        best = min(best, time.perf_counter() - started)
        placements = {vm.vm_id: sid for vm, sid in plan.items()}
    return best, placements


def test_indexed_engine_speedup_1k():
    """Indexed >= 3x faster than dense at 1000 VMs / 300 servers, with
    identical placements (the equivalence contract on the hot path)."""
    indexed_s, indexed_placed = _best_of("indexed")
    dense_s, dense_placed = _best_of("dense")
    assert indexed_placed == dense_placed
    speedup = dense_s / indexed_s
    record_result("engine_speedup", "\n".join([
        "min-energy, 1000 VMs / 300 servers (best of 3)",
        f"indexed engine: {indexed_s * 1000:8.1f} ms",
        f"dense engine:   {dense_s * 1000:8.1f} ms",
        f"speedup:        {speedup:8.2f}x (floor: 3.00x)",
    ]))
    record_json("engine", {
        "benchmark": "min-energy, 1000 VMs / 300 servers (best of 3)",
        "indexed_ms": round(indexed_s * 1000, 1),
        "dense_ms": round(dense_s * 1000, 1),
        "speedup": round(speedup, 2),
        "floor": 3.0,
    })
    assert speedup >= 3.0


#: The fleet-probe kernel scale point: 10k VMs onto 3k servers — large
#: enough that the per-server Python scan dominates without the
#: incremental index + batch kernel.
VMS_10K = generate_vms(10_000, mean_interarrival=1.0, seed=0)
CLUSTER_3K = Cluster.paper_all_types(3000)


def _best_of_10k(engine: str, rounds: int = 2
                 ) -> tuple[float, dict[int, int]]:
    best = float("inf")
    placements: dict[int, int] = {}
    for _ in range(rounds):
        allocator = make_allocator("min-energy", seed=0, engine=engine)
        started = time.perf_counter()
        plan = allocator.allocate(VMS_10K, CLUSTER_3K)
        best = min(best, time.perf_counter() - started)
        placements = {vm.vm_id: sid for vm, sid in plan.items()}
    return best, placements


def test_kernel_speedup_10k():
    """Batch probe kernel >= 3x faster than the scalar indexed scan at
    10k VMs / 3k servers, with bit-identical placements and energy."""
    kernel_s, kernel_placed = _best_of_10k("indexed:kernel=on")
    scalar_s, scalar_placed = _best_of_10k("indexed:kernel=off")
    assert kernel_placed == scalar_placed
    speedup = scalar_s / kernel_s
    record_result("kernel_speedup", "\n".join([
        "min-energy, 10000 VMs / 3000 servers (best of 2)",
        f"batch kernel:   {kernel_s * 1000:8.1f} ms",
        f"scalar indexed: {scalar_s * 1000:8.1f} ms",
        f"speedup:        {speedup:8.2f}x (floor: 3.00x)",
    ]))
    record_json("kernel", {
        "benchmark": "min-energy, 10000 VMs / 3000 servers (best of 2)",
        "kernel_ms": round(kernel_s * 1000, 1),
        "scalar_indexed_ms": round(scalar_s * 1000, 1),
        "speedup": round(speedup, 2),
        "floor": 3.0,
    })
    assert speedup >= 3.0


def test_kernel_equivalence_at_scale_10k():
    """Bit-identical Eq.-17 energy, kernel on vs off, at the 10k point."""
    totals = []
    for engine in ("indexed:kernel=on", "indexed:kernel=off"):
        allocator = make_allocator("min-energy", seed=0, engine=engine)
        totals.append(
            allocation_cost(allocator.allocate(VMS_10K, CLUSTER_3K)).total)
    assert totals[0] == totals[1]


def test_engine_equivalence_at_scale():
    """Bit-identical Eq.-17 energy between engines at the 1k point."""
    totals = []
    for engine in ("indexed", "dense"):
        allocator = make_allocator("min-energy", seed=0, engine=engine)
        totals.append(
            allocation_cost(allocator.allocate(VMS_1K, CLUSTER_300)).total)
    assert totals[0] == totals[1]


def test_energy_replay_throughput(benchmark):
    allocation = make_allocator("min-energy").allocate(VMS, CLUSTER)
    engine = SimulationEngine(CLUSTER)
    result = benchmark(lambda: engine.replay(allocation))
    assert result.total_energy > 0


def test_ilp_build_throughput(benchmark):
    vms = generate_vms(20, mean_interarrival=2.0, seed=0)
    cluster = Cluster.paper_all_types(8)
    problem = benchmark(lambda: build_problem(vms, cluster))
    assert problem.n_variables > 0


def test_workload_generation_throughput(benchmark):
    vms = benchmark(lambda: generate_vms(5000, mean_interarrival=1.0,
                                         seed=1))
    assert len(vms) == 5000
