"""Micro-benchmarks: allocation throughput of the core algorithms.

These use pytest-benchmark's statistics properly (multiple rounds) and
guard the library's performance envelope: the paper's heuristic evaluates
the incremental cost on every feasible server per VM, so it must stay
usable at the paper's 1000-VM scale.
"""

from __future__ import annotations

import pytest

from repro.allocators import make_allocator
from repro.ilp import build_problem
from repro.model.cluster import Cluster
from repro.simulation import SimulationEngine
from repro.workload.generator import generate_vms

VMS = generate_vms(300, mean_interarrival=4.0, seed=0)
CLUSTER = Cluster.paper_all_types(150)


@pytest.mark.parametrize("algo", ["min-energy", "ffps", "best-fit"])
def test_allocator_throughput(benchmark, algo):
    allocation = benchmark(
        lambda: make_allocator(algo, seed=0).allocate(VMS, CLUSTER))
    assert len(allocation) == len(VMS)


def test_energy_replay_throughput(benchmark):
    allocation = make_allocator("min-energy").allocate(VMS, CLUSTER)
    engine = SimulationEngine(CLUSTER)
    result = benchmark(lambda: engine.replay(allocation))
    assert result.total_energy > 0


def test_ilp_build_throughput(benchmark):
    vms = generate_vms(20, mean_interarrival=2.0, seed=0)
    cluster = Cluster.paper_all_types(8)
    problem = benchmark(lambda: build_problem(vms, cluster))
    assert problem.n_variables > 0


def test_workload_generation_throughput(benchmark):
    vms = benchmark(lambda: generate_vms(5000, mean_interarrival=1.0,
                                         seed=1))
    assert len(vms) == 5000
