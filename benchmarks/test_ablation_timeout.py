"""Ablation: the clairvoyance premium of the Eq.-16 sleep rule.

The paper's gap rule knows each idle gap's length in advance; a real
server sleeps after a fixed idle timeout. This bench measures how much
the practical ski-rental policy (timeout = alpha / P_idle, 2-competitive
per gap) loses against the paper's clairvoyant accounting on the paper's
own workload family — and whether the heuristic's advantage over FFPS
survives the realistic policy.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.energy.timeout import timeout_energy
from repro.experiments.figures import format_table
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2)


def run_study():
    premium_ours = 0.0
    premium_ffps = 0.0
    reduction_online = 0.0
    for seed in SEEDS:
        vms = generate_vms(300, mean_interarrival=6.0, seed=seed)
        cluster = Cluster.paper_all_types(150)
        ours = MinIncrementalEnergy().allocate(vms, cluster)
        ffps = FirstFitPowerSaving(seed=seed).allocate(vms, cluster)
        ours_clair = allocation_cost(ours).total
        ffps_clair = allocation_cost(ffps).total
        ours_online = timeout_energy(ours)
        ffps_online = timeout_energy(ffps)
        premium_ours += 100 * (ours_online - ours_clair) / ours_clair
        premium_ffps += 100 * (ffps_online - ffps_clair) / ffps_clair
        reduction_online += 100 * (ffps_online - ours_online) / ffps_online
    n = len(SEEDS)
    return premium_ours / n, premium_ffps / n, reduction_online / n


def test_ablation_timeout(benchmark):
    ours_premium, ffps_premium, reduction = benchmark.pedantic(
        run_study, rounds=1, iterations=1)
    record_result("ablation_timeout", format_table(
        ("quantity", "%"),
        [("online premium, min-energy plan", round(ours_premium, 2)),
         ("online premium, ffps plan", round(ffps_premium, 2)),
         ("reduction vs ffps under online policy", round(reduction, 2))]))

    # clairvoyance is worth something but not much on this family
    assert 0.0 <= ours_premium < 20.0
    assert 0.0 <= ffps_premium < 20.0
    # the heuristic's advantage survives the realistic sleep policy
    assert reduction > 5.0
