"""Benchmark: live consolidation episodes in the allocation daemon.

A retirement-heavy trace — every server takes one short heavy VM and one
long light one, so once the shorts retire the whole fleet idles badly
fragmented — is streamed at a daemon, then consolidation episodes run at
fixed boundaries. The gates: consolidation must cut fleet energy
(including every migration's cost) by at least 15 % against an identical
daemon that never consolidates, and no episode may take 50 ms or more at
the p99.
"""

from __future__ import annotations

import pytest

from repro.model.cluster import Cluster
from repro.model.intervals import TimeInterval
from repro.model.server import Server, ServerSpec
from repro.model.vm import VM, VMSpec
from repro.service import AllocationDaemon, ClusterStateStore
from repro.service.protocol import consolidate_request, place_request

from conftest import record_result

SPEC = ServerSpec("s", cpu_capacity=10.0, memory_capacity=10.0,
                  p_idle=50.0, p_peak=100.0, transition_time=1.0)
N_SERVERS = 300
N_PAIRS = 300  # 600 VMs: one (short heavy, long light) pair per server
EPOCH = 30
MIGRATION_K = 8


def retirement_heavy_trace():
    """600 VMs in 300 pairs with staggered starts: the short burns hot
    for 18 ticks, the long idles its server for ~178 more."""
    vms = []
    for pair in range(N_PAIRS):
        start = 1 + (pair % 10)
        vms.append(VM(2 * pair, VMSpec("short", cpu=7.0, memory=5.0),
                      TimeInterval(start, start + 18)))
        vms.append(VM(2 * pair + 1, VMSpec("long", cpu=2.0, memory=4.0),
                      TimeInterval(start, start + 178)))
    return sorted(vms, key=lambda v: (v.start, v.end, v.vm_id))


TRACE = retirement_heavy_trace()
HORIZON = max(vm.end for vm in TRACE)


def _loaded_daemon(**kwargs):
    store = ClusterStateStore(
        Cluster([Server(i, SPEC) for i in range(N_SERVERS)]))
    daemon = AllocationDaemon(store, algorithm="first-fit",
                              migration_k=MIGRATION_K, **kwargs)
    for vm in TRACE:
        response = daemon.handle(place_request(vm))
        assert response["decision"] == "placed", response
    return daemon, store


def test_consolidation_episode_latency(benchmark):
    """One full episode — plan, migrate, rebuild the fleet — right
    after the retirement wave, when every server is a victim."""
    def setup():
        daemon, _ = _loaded_daemon()
        daemon.handle({"op": "tick", "now": EPOCH})
        return (daemon,), {}

    def consolidate(daemon):
        response = daemon.handle(consolidate_request())
        assert response["ok"], response
        return response

    response = benchmark.pedantic(consolidate, setup=setup, rounds=5,
                                  iterations=1)
    assert response["migrations"] >= N_PAIRS // 4


#: Latency rounds: the sweep is deterministic, so each boundary's episode
#: costs what its cheapest run costs — the minimum strips scheduler noise
#: from the gate without hiding algorithmic cost.
ROUNDS = 3


def test_consolidation_energy_gate():
    """The subsystem's reason to exist: >= 15 % fleet energy saved net
    of migration costs, with every episode under 50 ms at the p99."""
    baseline_daemon, baseline = _loaded_daemon()
    baseline_daemon.handle({"op": "tick", "now": HORIZON + 1})
    baseline.run_to_completion()
    baseline_energy = baseline.energy_total()

    boundaries = list(range(EPOCH, HORIZON + 1, EPOCH))
    latencies = [float("inf")] * len(boundaries)
    for _ in range(ROUNDS):
        daemon, store = _loaded_daemon()
        episodes = []
        for i, boundary in enumerate(boundaries):
            daemon.handle({"op": "tick", "now": boundary})
            response = daemon.handle(consolidate_request(boundary))
            assert response["ok"], response
            latencies[i] = min(latencies[i],
                               float(response["latency_ms"]))
            episodes.append(response)
    daemon.handle({"op": "tick", "now": HORIZON + 1})
    store.run_to_completion()

    consolidated = store.energy_total() + store.migration_energy
    reduction = 1.0 - consolidated / baseline_energy
    ranked = sorted(latencies)
    p99 = ranked[min(len(ranked) - 1,
                     int(0.99 * len(ranked)))]
    migrations = sum(r["migrations"] for r in episodes)
    freed = sum(r["servers_freed"] for r in episodes)

    lines = [f"live consolidation on the retirement-heavy trace "
             f"({len(TRACE)} VMs, {N_SERVERS} servers, epoch {EPOCH}, "
             f"k={MIGRATION_K}, best of {ROUNDS} rounds):",
             f"{'boundary':>9} {'moves':>6} {'freed':>6} "
             f"{'saved W·min':>12} {'ms':>8}"]
    for boundary, r, ms in zip(boundaries, episodes, latencies):
        lines.append(f"{boundary:>9} {r['migrations']:>6} "
                     f"{r['servers_freed']:>6} "
                     f"{r['energy_saved']:>12.1f} "
                     f"{ms:>8.2f}")
    lines.append(f"baseline energy:      {baseline_energy:>14.1f} W·min")
    lines.append(f"consolidated energy:  {consolidated:>14.1f} W·min "
                 f"(incl. {store.migration_energy:.1f} migration)")
    lines.append(f"reduction:            {100 * reduction:>13.1f} %  "
                 f"(gate >= 15 %)")
    lines.append(f"episode latency p99:  {p99:>13.2f} ms  "
                 f"(gate < 50 ms, {migrations} moves, {freed} servers "
                 f"freed)")
    record_result("consolidation", "\n".join(lines))

    assert reduction >= 0.15, f"only {100 * reduction:.1f}% saved"
    assert p99 < 50.0, f"episode p99 {p99:.2f} ms"
    # Sanity: the daemon's own accounting stayed consistent throughout.
    assert store.energy_accumulated == pytest.approx(
        store.energy_total(), rel=1e-12)
