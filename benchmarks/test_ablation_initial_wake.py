"""Ablation: share of energy from the initial-wake convention.

DESIGN.md ablation 3: Eq. (17) as OCR'd omits the first switch-on cost;
we charge it (required for ILP consistency). This bench quantifies how
much of the total it represents — it must be small and, because it is
charged identically to every algorithm, it cannot flip any comparison.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import ablation_initial_wake


def test_ablation_initial_wake(benchmark):
    config = ScenarioConfig(n_vms=300, mean_interarrival=4.0,
                            seeds=(0, 1, 2))
    result = benchmark.pedantic(ablation_initial_wake, args=(config,),
                                rounds=1, iterations=1)
    record_result("ablation_initial_wake", result.format())

    for row in result.rows:
        # the wake share of total energy stays a minor component
        assert 0.0 < row.reduction_vs_ffps_pct < 20.0
