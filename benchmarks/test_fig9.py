"""Fig. 9 — reduction ratio vs system load, both server mixes (1000 VMs).

Paper shape: the reduction decreases close to linearly as the load grows,
and at equal load the all-types mix saves more than the types-1-3 mix
(FFPS wastes the big servers; the heuristic avoids them).
"""

from __future__ import annotations


from conftest import record_result
from repro.experiments.figures import fig9

INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig9(benchmark):
    result = benchmark.pedantic(
        fig9, kwargs=dict(n_vms=1000, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig9", result.format())

    by_label = {s.label: s for s in result.series}
    assert len(by_label) == 4

    # linear fits with negative slope: reduction falls as load rises.
    for series in result.series:
        assert series.fit is not None and series.fit.kind == "linear"
        assert series.fit.params[1] < 0

    # all-types saves more than types 1-3 *at equal load* (the paper's
    # claim; the two sweeps cover different load ranges, so compare the
    # fitted lines at common loads inside both ranges).
    all_fit = by_label["vs CPU load (all types)"].fit
    small_fit = by_label["vs CPU load (types 1-3)"].fit
    for load in (40.0, 50.0):
        assert all_fit.predict(load) > small_fit.predict(load)
