"""Benchmark: live failure handling in the allocation daemon.

Measures the cost of one ``fail_server`` episode — split every affected
VM, re-place the remainders through min-incremental-energy, rebuild the
victim's planning book, rebuild the sharded fleet view — at a realistic
load point, and verifies the live path's energy agrees with the offline
``inject_failures`` oracle at that scale. The recorded table tracks how
re-placement latency scales with the number of VMs cut."""

from __future__ import annotations

import time

import pytest

from repro.allocators import MinIncrementalEnergy
from repro.energy import allocation_cost
from repro.model.cluster import Cluster
from repro.service import AllocationDaemon, ClusterStateStore
from repro.service.protocol import fail_server_request, place_request
from repro.simulation import simulate_online
from repro.simulation.failures import ServerFailure, inject_failures
from repro.workload.generator import generate_vms

from conftest import record_result

VMS = generate_vms(400, mean_interarrival=1.0, mean_duration=40.0,
                   seed=2)
N_SERVERS = 200


def _loaded_daemon():
    store = ClusterStateStore(Cluster.paper_all_types(N_SERVERS))
    daemon = AllocationDaemon(store)
    for vm in sorted(VMS, key=lambda v: (v.start, v.end, v.vm_id)):
        response = daemon.handle(place_request(vm))
        assert response["decision"] == "placed", response
    return daemon, store


def _busiest_server(store):
    running = {}
    for vm, sid in store.placements:
        if vm.end >= store.clock + 1:
            running[sid] = running.get(sid, 0) + 1
    return max(running.items(), key=lambda kv: (kv[1], -kv[0]))


def test_fail_server_latency(benchmark):
    """One failure episode on the busiest server, re-placing its VMs."""
    def setup():
        daemon, store = _loaded_daemon()
        victim, _ = _busiest_server(store)
        return (daemon, victim), {}

    def fail(daemon, victim):
        response = daemon.handle(
            fail_server_request(victim, daemon.store.clock + 1))
        assert response["ok"], response
        return response

    response = benchmark.pedantic(fail, setup=setup, rounds=5,
                                  iterations=1)
    assert response["replaced"] + len(response["lost"]) >= 1


def test_live_failures_match_offline_at_scale():
    daemon, store = _loaded_daemon()
    clock = store.clock
    by_load = {}
    for vm, sid in store.placements:
        if vm.end >= clock + 5:
            by_load[sid] = by_load.get(sid, 0) + 1
    victims = sorted(by_load, key=lambda s: (-by_load[s], s))[:5]
    schedule = sorted(
        (ServerFailure(server_id=sid, time=clock + 1 + i)
         for i, sid in enumerate(sorted(victims))),
        key=lambda f: (f.time, f.server_id))

    lines = ["failure episodes on the busiest servers "
             f"({len(VMS)} VMs, {N_SERVERS} servers):",
             f"{'server':>8} {'time':>6} {'cut':>5} {'replaced':>9} "
             f"{'lost':>5} {'ms':>8}"]
    for failure in schedule:
        started = time.perf_counter()
        response = daemon.handle(
            fail_server_request(failure.server_id, failure.time))
        elapsed = (time.perf_counter() - started) * 1e3
        assert response["ok"], response
        lines.append(
            f"{failure.server_id:>8} {failure.time:>6} "
            f"{len(response['replacements']):>5} "
            f"{response['replaced']:>9} {len(response['lost']):>5} "
            f"{elapsed:>8.2f}")
    store.run_to_completion()

    alloc, _ = simulate_online(VMS, Cluster.paper_all_types(N_SERVERS),
                               MinIncrementalEnergy())
    outcome = inject_failures(alloc, schedule)
    assert store.energy_total() == pytest.approx(
        allocation_cost(outcome.allocation).total, rel=1e-12)
    lines.append(f"live == offline energy: {store.energy_total():.1f} "
                 "W·min (rel 1e-12)")
    record_result("failure_recovery", "\n".join(lines))
