"""Fig. 5 — impact of the server transition time (1000 VMs / 500 servers).

Paper shape: shorter transition times let servers sleep through more idle
segments, so the heuristic saves more energy; the 0.5- and 1-minute curves
sit above the 3-minute curve across the sweep.
"""

from __future__ import annotations

import numpy as np

from conftest import record_result
from repro.experiments.figures import fig5

INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig5(benchmark):
    result = benchmark.pedantic(
        fig5, kwargs=dict(transition_times=(0.5, 1.0, 3.0), n_vms=1000,
                          interarrivals=INTERARRIVALS, seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig5", result.format())

    short, mid, long_ = result.series
    short_mean = np.mean(short.reductions_pct())
    mid_mean = np.mean(mid.reductions_pct())
    long_mean = np.mean(long_.reductions_pct())
    # ordering: shorter transition -> more saving (on average over the
    # sweep; individual points are noisy).
    assert short_mean >= mid_mean - 0.5
    assert mid_mean > long_mean
    # every curve still shows positive savings at light load
    assert short.reductions_pct()[-1] > 5.0
    assert long_.reductions_pct()[-1] > 5.0
