"""Extension study: allocation-only vs allocation + migration.

The paper positions itself against migration-based energy savers
(Sec. V). This bench quantifies the trade-off the paper declined to
explore: how much extra energy a migration post-pass recovers on top of
each initial plan, at what migration churn.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.extensions import EpochConsolidator
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2)


def run_study():
    rows = []
    for label, base_factory in (
            ("ffps", lambda s: FirstFitPowerSaving(seed=s)),
            ("min-energy", lambda s: MinIncrementalEnergy())):
        static_total = 0.0
        consolidated_total = 0.0
        moves = 0
        for seed in SEEDS:
            vms = generate_vms(300, mean_interarrival=5.0, seed=seed)
            cluster = Cluster.paper_all_types(150)
            static_total += allocation_cost(
                base_factory(seed).allocate(vms, cluster)).total
            result = EpochConsolidator(
                epoch_length=10, migration_cost_per_gb=2.0,
                base=base_factory(seed)).allocate(vms, cluster)
            consolidated_total += result.total_energy
            moves += result.migration_count
        saving = 100 * (static_total - consolidated_total) / static_total
        rows.append((label, round(static_total / len(SEEDS), 0),
                     round(consolidated_total / len(SEEDS), 0),
                     round(saving, 2), round(moves / len(SEEDS), 1)))
    return rows


def test_extension_migration(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = format_table(
        ("initial plan", "static energy", "with migration",
         "extra saving %", "moves/run"), rows)
    record_result("extension_migration", table)

    by_label = {row[0]: row for row in rows}
    # migration never hurts (only strictly-saving moves are applied)
    assert by_label["ffps"][3] >= 0.0
    assert by_label["min-energy"][3] >= 0.0
    # a bad initial plan gains more from migration than a good one —
    # supporting the paper's thesis that allocating well up front
    # captures most of the savings
    assert by_label["ffps"][3] >= by_label["min-energy"][3]
