"""Ablation: the whole allocator zoo on the Fig.-2 default scenario.

DESIGN.md ablation 1: does evaluating the incremental Eq.-17 cost per
candidate beat both naive packing rules and a static energy-efficiency
ordering?
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import ablation_zoo


def test_ablation_zoo(benchmark):
    config = ScenarioConfig(n_vms=300, mean_interarrival=4.0,
                            seeds=(0, 1, 2))
    result = benchmark.pedantic(ablation_zoo, args=(config,),
                                rounds=1, iterations=1)
    record_result("ablation_zoo", result.format())

    energy = {row.label: row.energy_mean for row in result.rows}
    # the paper's heuristic beats the baseline and the naive spreaders
    assert energy["min-energy"] < energy["ffps"]
    assert energy["min-energy"] < energy["worst-fit"]
    assert energy["min-energy"] < energy["round-robin"]
    assert energy["min-energy"] < energy["random-fit"]
    # load-spreading strategies anchor the expensive end
    assert energy["worst-fit"] > energy["ffps"]
