"""Extension study: time-varying demand (the paper's general R_jt).

The paper's formulation allows per-time-unit demand but its simulations
fix it. This bench runs the full machinery on phased workloads and asks
two questions: (a) does the heuristic's advantage over FFPS survive
demand variability, and (b) how much energy does phase-aware accounting
save over reserving every VM's peak for its whole lifetime?
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.model.cluster import Cluster
from repro.model.vm import VM
from repro.workload.phased import PhasedWorkload

SEEDS = (0, 1, 2)


def run_study():
    reduction_total = 0.0
    phased_total = 0.0
    peak_total = 0.0
    for seed in SEEDS:
        wl = PhasedWorkload(mean_interarrival=5.0, mean_duration=8.0)
        vms = wl.generate(300, rng=seed)
        cluster = Cluster.paper_all_types(150)
        ours = allocation_cost(
            MinIncrementalEnergy().allocate(vms, cluster)).total
        ffps = allocation_cost(
            FirstFitPowerSaving(seed=seed).allocate(vms, cluster)).total
        reduction_total += 100 * (ffps - ours) / ffps
        phased_total += ours
        # constant-peak twins: what peak reservation would cost
        peaked = [VM(vm.vm_id, vm.spec, vm.interval) for vm in vms]
        peak_total += allocation_cost(
            MinIncrementalEnergy().allocate(peaked, cluster)).total
    n = len(SEEDS)
    return (reduction_total / n, phased_total / n, peak_total / n)


def test_extension_phased(benchmark):
    reduction, phased, peaked = benchmark.pedantic(run_study, rounds=1,
                                                   iterations=1)
    phase_saving = 100 * (peaked - phased) / peaked
    record_result("extension_phased", format_table(
        ("quantity", "value"),
        [("reduction vs ffps (phased) %", round(reduction, 2)),
         ("phase-aware energy", round(phased, 0)),
         ("peak-reservation energy", round(peaked, 0)),
         ("saving from phase awareness %", round(phase_saving, 2))]))

    # the heuristic's advantage survives demand variability
    assert reduction > 5.0
    # exploiting phase structure beats peak reservation
    assert phase_saving > 0.0
