"""Extension study: the energy price of fault isolation.

Anti-affinity (replicas on distinct servers) fights consolidation: the
more VMs must be kept apart, the more servers stay awake. This bench
isolates increasing fractions of the workload into anti-affinity groups
of five and measures the energy premium over the unconstrained plan.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import MinIncrementalEnergy
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.model.cluster import Cluster
from repro.model.constraints import PlacementConstraints
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2)
GROUP_SIZE = 5
FRACTIONS = (0.0, 0.2, 0.5, 1.0)


def isolation_constraints(vms, fraction):
    isolated = vms[: int(len(vms) * fraction)]
    groups = [
        {vm.vm_id for vm in isolated[k:k + GROUP_SIZE]}
        for k in range(0, len(isolated), GROUP_SIZE)
    ]
    groups = [g for g in groups if len(g) >= 2]
    return PlacementConstraints.build(separate=groups)


def run_study():
    premiums = {fraction: 0.0 for fraction in FRACTIONS}
    for seed in SEEDS:
        vms = generate_vms(200, mean_interarrival=2.0, seed=seed)
        cluster = Cluster.paper_all_types(100)
        allocator = MinIncrementalEnergy()
        base = allocation_cost(allocator.allocate(vms, cluster)).total
        for fraction in FRACTIONS:
            constraints = isolation_constraints(vms, fraction)
            plan = allocator.allocate(vms, cluster,
                                      constraints=constraints)
            constraints.validate_allocation(plan)
            cost = allocation_cost(plan).total
            premiums[fraction] += 100 * (cost - base) / base
    return {fraction: total / len(SEEDS)
            for fraction, total in premiums.items()}


def test_constraints_price(benchmark):
    premiums = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [(f"{int(100 * fraction)}% isolated",
             round(premium, 2))
            for fraction, premium in premiums.items()]
    record_result("constraints_price", format_table(
        ("workload share in anti-affinity groups", "energy premium %"),
        rows))

    assert premiums[0.0] == 0.0
    # isolation never saves energy...
    for premium in premiums.values():
        assert premium >= -1e-9
    # ...and isolating everything costs more than isolating a fifth
    assert premiums[1.0] >= premiums[0.2]
