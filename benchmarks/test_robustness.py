"""Benchmark: the Γ-robust placement frontier, gated on overload.

An uncertain phased workload (±30 % demand intervals around the catalog
nominals) is planned once per Γ budget and every committed plan is
replayed against the same realized demand worlds
(:mod:`repro.robust.evaluate`). The gate: at Γ=2 the overload rate must
drop to less than half the nominal planner's — a robustness budget that
does not buy real overload protection is a dead knob. The full frontier
(energy premium per budget included) is recorded to
``benchmarks/results/`` and summarized in ``BENCH_gamma.json`` at the
repo root, committed alongside the change that produced it.
"""

from __future__ import annotations

from repro.experiments.figures import robust_frontier

from conftest import record_json, record_result

N_VMS = 300
UNCERTAINTY = 0.3
GAMMAS = (0, 1, 2, 3, 4)
DRAWS = 20
SEED = 7
GATED_GAMMA = 2


def test_gamma_budget_cuts_overload_rate():
    result = robust_frontier(n_vms=N_VMS, uncertainty=UNCERTAINTY,
                             gammas=GAMMAS, include_box=True,
                             draws=DRAWS, seed=SEED)
    record_result("gamma_frontier", result.format())
    points = {p.label: p for p in result.sweep.points}
    nominal = points["Γ=0"]
    robust = points[f"Γ={GATED_GAMMA}"]
    record_json("gamma", {
        "n_vms": N_VMS,
        "uncertainty": UNCERTAINTY,
        "draws": DRAWS,
        "algo": result.sweep.algo,
        "frontier": [{
            "label": p.label, "gamma": p.gamma, "mode": p.mode,
            "energy": round(p.energy, 3), "placed": p.placed,
            "rejected": p.rejected,
            "overload_rate": round(p.overload_rate, 6),
        } for p in result.sweep.points],
        "nominal_overload_rate": round(nominal.overload_rate, 6),
        "gated_gamma": GATED_GAMMA,
        "gated_overload_rate": round(robust.overload_rate, 6),
    })
    # The uncertain workload must actually stress the nominal planner,
    # otherwise the gate below would pass vacuously.
    assert nominal.overload_rate > 0.01, (
        f"nominal plan overloads only {nominal.overload_rate:.2%} of "
        f"busy server-time; the workload no longer exercises the gate")
    # The gate: a Γ=2 budget cuts the realized overload rate to less
    # than half the nominal planner's on the same workload and worlds.
    assert robust.overload_rate < 0.5 * nominal.overload_rate, (
        f"Γ={GATED_GAMMA} overload rate {robust.overload_rate:.4f} is "
        f"not below half the nominal {nominal.overload_rate:.4f}")


def test_frontier_is_monotone_in_overload():
    """More budget never buys more realized overload (same worlds)."""
    result = robust_frontier(n_vms=N_VMS, uncertainty=UNCERTAINTY,
                             gammas=GAMMAS, include_box=False,
                             draws=DRAWS, seed=SEED)
    rates = [p.overload_rate for p in result.sweep.points]
    assert rates == sorted(rates, reverse=True), rates


def test_robustness_charges_an_energy_premium():
    """The frontier's other axis: the robust plan must not be free —
    it reserves headroom, so its committed Eq.-17 energy (plus any
    rejections) reflects the premium the figure plots."""
    result = robust_frontier(n_vms=N_VMS, uncertainty=UNCERTAINTY,
                             gammas=(0, GATED_GAMMA), include_box=False,
                             draws=2, seed=SEED)
    nominal, robust = result.sweep.points
    assert robust.energy > nominal.energy or \
        robust.rejected > nominal.rejected
