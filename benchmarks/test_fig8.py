"""Fig. 8 — utilisation of standard VMs under two server mixes (1000 VMs).

Paper shape: the heuristic keeps CPU and memory utilisation high (the
paper reports >70 %) in both mixes and at a similar level in the two
panels, while FFPS is much lower — dramatically so when large server
types are present (panel (a), the paper reports ~30 %).
"""

from __future__ import annotations

import numpy as np

from conftest import record_result
from repro.experiments.figures import fig8

INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig8(benchmark):
    result = benchmark.pedantic(
        fig8, kwargs=dict(n_vms=1000, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig8", result.format())

    def means(panel, attribute):
        return np.mean([getattr(p.comparison, attribute).mean
                        for p in panel.points])

    ours_all = means(result.all_types, "algorithm_cpu_util")
    ours_small = means(result.small_types, "algorithm_cpu_util")
    ffps_all = means(result.all_types, "baseline_cpu_util")
    ffps_small = means(result.small_types, "baseline_cpu_util")

    # the heuristic dominates FFPS in both panels
    assert ours_all > ffps_all
    assert ours_small > ffps_small
    # "when all types of servers are used, the utilization by using the
    # FFPS method is low to 30 %": at the lightest load FFPS's CPU
    # utilisation on the all-types mix collapses towards ~30 %.
    ffps_all_lightest = result.all_types.points[-1] \
        .comparison.baseline_cpu_util.mean
    assert ffps_all_lightest < 0.35
    # the heuristic's utilisation is similar across mixes (paper: "the
    # same high utilization in both cases") — with standard VMs it picks
    # the small types in both fleets, so the panels nearly coincide.
    assert abs(ours_all - ours_small) < 0.15
