"""Fig. 2 — energy reduction ratio vs mean inter-arrival, 100-500 VMs.

Paper shape: the reduction grows approximately linearly with the mean
inter-arrival time, reaches ~10 % at 10 minutes, and is similar across VM
counts (the scalability claim).
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import fig2

N_VMS = (100, 300, 500)
INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig2(benchmark):
    result = benchmark.pedantic(
        fig2, kwargs=dict(n_vms_list=N_VMS, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig2", result.format())

    for series in result.series:
        reductions = series.reductions_pct()
        # who wins: the heuristic saves energy at light load...
        assert reductions[-1] > 5.0
        # ...and the trend with inter-arrival is increasing.
        assert reductions[-1] > reductions[0]
        # the paper's fit family is linear with a positive slope.
        assert series.fit is not None
        assert series.fit.params[1] > 0

    # scalability: the reduction at ia=10 is similar for every VM count.
    finals = [s.reductions_pct()[-1] for s in result.series]
    assert max(finals) - min(finals) < 12.0
