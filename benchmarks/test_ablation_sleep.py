"""Ablation: value of the min(P_idle*gap, alpha) sleep rule (Eq. 16).

DESIGN.md ablation 2: compare the paper's gap rule against never
sleeping (pay idle power through every gap) and always sleeping (pay a
wake-up per gap regardless of its length).
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import ablation_sleep_policy


def test_ablation_sleep(benchmark):
    config = ScenarioConfig(n_vms=300, mean_interarrival=6.0,
                            seeds=(0, 1, 2))
    result = benchmark.pedantic(ablation_sleep_policy, args=(config,),
                                rounds=1, iterations=1)
    record_result("ablation_sleep", result.format())

    energy = {row.label: row.energy_mean for row in result.rows}
    assert energy["optimal"] <= energy["never-sleep"]
    assert energy["optimal"] <= energy["always-sleep"]
