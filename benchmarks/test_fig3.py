"""Fig. 3 — average CPU and memory utilisation, ours vs FFPS (100 VMs).

Paper shape: the heuristic's utilisations are substantially higher than
FFPS's at every inter-arrival, and utilisation decreases as the mean
inter-arrival time grows.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import fig3

INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig3(benchmark):
    result = benchmark.pedantic(
        fig3, kwargs=dict(n_vms=100, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig3", result.format())

    ours_cpu = [p.comparison.algorithm_cpu_util.mean for p in result.points]
    ffps_cpu = [p.comparison.baseline_cpu_util.mean for p in result.points]
    ours_mem = [p.comparison.algorithm_mem_util.mean for p in result.points]
    ffps_mem = [p.comparison.baseline_mem_util.mean for p in result.points]

    # who wins: the heuristic packs active servers tighter everywhere.
    for o, f in zip(ours_cpu, ffps_cpu):
        assert o > f
    for o, f in zip(ours_mem, ffps_mem):
        assert o > f

    # trend: utilisation decreases as inter-arrival grows (lighter load).
    assert ffps_cpu[-1] < ffps_cpu[0]
    assert ours_cpu[-1] < ours_cpu[0]
