"""Benchmark gate: ``place_batch`` vs per-VM ``place`` over real TCP.

The v2 batch operation exists to amortize per-request overhead: the
TCP round trip *and* the durability cost, since a batch commits as one
journal group (one fsync) where N individual ``place`` requests fsync
N times. The gate holds the daemon to its production configuration —
durable journal, ``fsync=True`` (the constructor default) — and
requires 1000 VMs sent as one ``place_batch`` to beat 1000 individual
``place`` round trips by >= 3x wall-clock.

The workload is deliberately *dense* (1000 arrivals inside ~50 ticks,
short-lived VMs, 100 servers, first-fit): simulation compute — tick
advancement and the feasibility scan — is identical on both paths, so
a sparse workload would just dilute the protocol/durability overhead
the batch op was designed to amortize. The gate also holds the
equivalence contract at scale: both paths must leave the daemon with
identical placements and a bit-identical energy ledger.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.model.cluster import Cluster
from repro.service import (
    AllocationDaemon,
    ClusterStateStore,
    AllocationClient,
    replay_trace,
    serve_tcp,
)
from repro.workload.generator import generate_vms

from conftest import record_result

#: The tentpole scale point: a dense 1000-VM burst onto 100 servers.
VMS_1K = generate_vms(1000, mean_interarrival=0.05, mean_duration=1.0,
                      seed=0)
N_SERVERS = 100
BATCH = 1000

SPEEDUP_FLOOR = 3.0
#: Trials per path; the gate compares best-of-N to shed cold-start
#: noise (first-connection TCP setup, allocator warmup).
TRIALS = 3


def _run_stream(batch: int | None) -> tuple[float, dict, float]:
    """Stream the 1k workload at a fresh durable TCP daemon; returns
    (seconds, placements, energy)."""
    store = ClusterStateStore(Cluster.paper_all_types(N_SERVERS))
    data_dir = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    daemon = AllocationDaemon(store, algorithm="first-fit",
                              data_dir=data_dir)
    server = serve_tcp(daemon, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with AllocationClient(host, port) as client:
            started = time.perf_counter()
            summary = replay_trace(client, VMS_1K, final_tick=False,
                                   batch=batch)
            elapsed = time.perf_counter() - started
        assert summary.offered == len(VMS_1K)
    finally:
        server.shutdown()
        server.server_close()
        if daemon.journal is not None:
            daemon.journal.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return elapsed, dict(store.placements), store.energy_accumulated


def test_batch_throughput_gate_1k():
    """place_batch >= 3x faster than 1000 place round trips, with
    identical placements and bit-identical energy."""
    batch_runs = [_run_stream(BATCH) for _ in range(TRIALS)]
    single_runs = [_run_stream(None) for _ in range(TRIALS)]
    batch_s, batch_placed, batch_energy = \
        min(batch_runs, key=lambda run: run[0])
    single_s, single_placed, single_energy = \
        min(single_runs, key=lambda run: run[0])
    assert batch_placed == single_placed
    assert batch_energy == single_energy  # bit-identical ledger
    speedup = single_s / batch_s
    record_result("batch_speedup", "\n".join([
        f"first-fit over TCP (durable daemon, fsync on), "
        f"{len(VMS_1K)} VMs / {N_SERVERS} servers",
        f"1000 x place:       {single_s * 1000:8.1f} ms",
        f"1 x place_batch:    {batch_s * 1000:8.1f} ms",
        f"speedup:            {speedup:8.2f}x "
        f"(floor: {SPEEDUP_FLOOR:.2f}x)",
    ]))
    assert speedup >= SPEEDUP_FLOOR


def test_batch_chunking_matches_full_batch(benchmark):
    """Chunked batches (10 x 100 VMs) land on the same placements as
    one 1000-VM batch — chunk boundaries must not change decisions."""
    chunked = benchmark.pedantic(_run_stream, args=(100,), rounds=1,
                                 iterations=1)
    full_placed = _run_stream(BATCH)[1]
    assert chunked[1] == full_placed
