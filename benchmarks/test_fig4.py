"""Fig. 4 — energy reduction ratio vs the memory load of the system.

Paper shape: as the load grows the reduction decreases, with a slowing
decrease rate — the paper overlays logarithmic fits with negative slope.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import fig4

N_VMS = (100, 300, 500)
INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig4(benchmark):
    result = benchmark.pedantic(
        fig4, kwargs=dict(n_vms_list=N_VMS, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig4", result.format())

    for series in result.series:
        xs = series.xs()
        reductions = series.reductions_pct()
        assert xs == sorted(xs)  # indexed by increasing load
        # trend: lower reduction at the highest load than at the lowest.
        assert reductions[-1] < reductions[0]
        # the paper's fit family: logarithmic, decreasing.
        assert series.fit is not None and series.fit.kind == "logarithmic"
        assert series.fit.params[1] < 0
