"""Extra study: receding-horizon exact solving vs heuristic vs optimum.

Quantifies the quality/effort ladder the library offers: greedy heuristic
(milliseconds) -> windowed exact (seconds) -> full ILP (exponential). On
small instances the windowed solver should land between the heuristic and
the optimum.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import make_allocator
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.ilp import RecedingHorizonSolver, solve_ilp
from repro.model.catalog import STANDARD_VM_TYPES
from repro.model.cluster import Cluster
from repro.workload.generator import PoissonWorkload

SEEDS = (0, 1, 2, 3)


def run_study():
    gaps = {"heuristic": 0.0, "window=10": 0.0, "window=25": 0.0}
    for seed in SEEDS:
        wl = PoissonWorkload(mean_interarrival=2.0, mean_duration=5.0,
                             vm_types=STANDARD_VM_TYPES)
        vms = wl.generate(12, rng=seed)
        cluster = Cluster.paper_all_types(5)
        optimal = solve_ilp(vms, cluster).objective
        heuristic = allocation_cost(
            make_allocator("min-energy").allocate(vms, cluster)).total
        gaps["heuristic"] += 100 * (heuristic - optimal) / optimal
        for window in (10, 25):
            cost = RecedingHorizonSolver(window_length=window).allocate(
                vms, cluster).total_energy
            gaps[f"window={window}"] += 100 * (cost - optimal) / optimal
    return {label: total / len(SEEDS) for label, total in gaps.items()}


def test_receding_horizon(benchmark):
    means = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [(label, round(gap, 2))
            for label, gap in sorted(means.items(), key=lambda kv: kv[1])]
    record_result("receding_horizon", format_table(
        ("solver", "mean gap above optimal %"), rows))

    assert means["window=25"] >= -1e-9
    assert means["window=10"] >= -1e-9
    # wider windows cannot do worse on average than narrow ones here
    assert means["window=25"] <= means["window=10"] + 1.0
    # and the windowed solver improves on the greedy heuristic
    assert means["window=25"] <= means["heuristic"] + 1e-9
