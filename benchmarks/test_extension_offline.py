"""Extension study: value of clairvoyance (offline VM orderings).

The paper's heuristic is online in arrival order. These variants keep its
selection rule but process VMs largest-footprint-first or longest-first —
orders only an offline planner could use. The gap between online and
offline bounds how much the arrival-order restriction costs.
"""

from __future__ import annotations

import repro.extensions  # noqa: F401 - registers the offline allocators
from conftest import record_result
from repro.allocators import make_allocator
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2, 3, 4)
ALGOS = ("min-energy", "min-energy-offline", "min-energy-longest", "ffps")


def run_study():
    energies = {algo: 0.0 for algo in ALGOS}
    for seed in SEEDS:
        vms = generate_vms(300, mean_interarrival=5.0, seed=seed)
        cluster = Cluster.paper_all_types(150)
        for algo in ALGOS:
            energies[algo] += allocation_cost(
                make_allocator(algo, seed=seed).allocate(vms,
                                                         cluster)).total
    return {algo: total / len(SEEDS) for algo, total in energies.items()}


def test_extension_offline(benchmark):
    means = benchmark.pedantic(run_study, rounds=1, iterations=1)
    online = means["min-energy"]
    rows = [(algo, round(energy, 0),
             round(100 * (online - energy) / online, 2))
            for algo, energy in sorted(means.items(),
                                       key=lambda kv: kv[1])]
    record_result("extension_offline", format_table(
        ("algorithm", "energy", "vs online min-energy %"), rows))

    # every min-energy variant beats FFPS
    for algo in ("min-energy", "min-energy-offline", "min-energy-longest"):
        assert means[algo] < means["ffps"]
    # clairvoyance is worth little: the online heuristic is within a few
    # percent of its offline variants (|gap| < 5 %)
    for algo in ("min-energy-offline", "min-energy-longest"):
        assert abs(means[algo] - online) / online < 0.05
