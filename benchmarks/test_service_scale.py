"""Benchmark gate: the async multi-protocol service at fleet scale.

Three contracts from the v3 rearchitecture, held under load:

* **Sustained concurrent throughput** — >= 10 clients (a mix of v1
  JSON-lines and v3 framed connections) stream placements at one
  :func:`serve_async` daemon; the gate requires a sustained
  placements/sec floor and a client-observed p99 latency inside a
  deliberately generous CI SLO (shared runners jitter; the gate
  catches order-of-magnitude regressions, not microseconds).
* **Worker-pool equivalence at scale** — every registry allocator
  must place a 40-VM stream bit-identically on a ``scan_processes``
  daemon and a plain single-process daemon (same shards), energy
  ledger included.
* **v1 byte-compatibility** — a raw v1 JSON-lines exchange over the
  async server matches the in-process ``handle_line`` bytes modulo
  the timing field.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.allocators.registry import allocator_names
from repro.model.cluster import Cluster
from repro.service import (
    AllocationClient,
    AllocationDaemon,
    ClusterStateStore,
    place_request,
    serve_async,
)
from repro.workload.generator import generate_vms
from repro.workload.trace import vm_from_record, vm_to_record

from conftest import record_result

N_CLIENTS = 12
VMS_PER_CLIENT = 30
N_SERVERS = 200

#: CI gates — generous on purpose (shared runners); the interesting
#: signal is the recorded numbers, the assertions catch collapses.
MIN_PLACEMENTS_PER_SEC = 20.0
P99_SLO_SECONDS = 1.0


def _client_workload(client_index: int) -> list:
    """Per-client VMs in a private id space, all arriving at tick 0 so
    twelve interleaved streams never fight over the clock."""
    out = []
    for vm in generate_vms(VMS_PER_CLIENT, mean_interarrival=1.0,
                           seed=100 + client_index):
        record = vm_to_record(vm)
        record["vm_id"] = (client_index + 1) * 100_000 + vm.vm_id
        record["start"] = 0
        record["end"] = max(1, vm.end - vm.start)
        out.append(vm_from_record(record))
    return out


def test_concurrent_clients_sustain_throughput_and_p99():
    daemon = AllocationDaemon(
        ClusterStateStore(Cluster.paper_all_types(N_SERVERS)),
        algorithm="min-energy", shards=4, max_inflight=0)
    server = serve_async(daemon, handler_threads=N_CLIENTS + 4)
    host, port = server.address
    latencies: list[list[float]] = [[] for _ in range(N_CLIENTS)]
    outcomes: list[list[str]] = [[] for _ in range(N_CLIENTS)]
    errors: list[BaseException] = []

    def run_client(index: int) -> None:
        framing = "frames" if index % 2 else "lines"
        try:
            with AllocationClient(host, port, framing=framing) as client:
                for vm in _client_workload(index):
                    started = time.perf_counter()
                    response = client.place(vm)
                    latencies[index].append(
                        time.perf_counter() - started)
                    outcomes[index].append(response.get("decision", "?"))
        except BaseException as exc:  # surfaced by the main thread
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(N_CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    elapsed = time.perf_counter() - started
    server.stop()
    assert not errors, errors
    all_latencies = sorted(lat for per in latencies for lat in per)
    total = len(all_latencies)
    assert total == N_CLIENTS * VMS_PER_CLIENT
    placed = sum(o == "placed" for per in outcomes for o in per)
    rate = total / elapsed
    p50 = all_latencies[total // 2]
    p99 = all_latencies[min(total - 1, int(total * 0.99))]
    record_result("service_scale", "\n".join([
        f"{N_CLIENTS} concurrent clients (half v1 lines, half v3 "
        f"frames), {total} placements, {N_SERVERS} servers",
        f"sustained rate:  {rate:8.1f} requests/s "
        f"(floor: {MIN_PLACEMENTS_PER_SEC:.0f}/s)",
        f"placed:          {placed:8d} / {total}",
        f"latency p50:     {p50 * 1000:8.2f} ms",
        f"latency p99:     {p99 * 1000:8.2f} ms "
        f"(SLO: {P99_SLO_SECONDS * 1000:.0f} ms)",
    ]))
    # every request got a definite decision from the shared daemon
    assert daemon.metrics.requests["placed"] == placed
    assert rate >= MIN_PLACEMENTS_PER_SEC
    assert p99 <= P99_SLO_SECONDS


def test_worker_pool_parity_across_all_allocators(benchmark):
    """Every registry allocator: pooled scans == in-process scans,
    bit for bit."""
    vms = []
    for vm in generate_vms(40, mean_interarrival=1.0, seed=31):
        record = vm_to_record(vm)
        record["vm_id"] = 10_000 + 100 * vm.vm_id
        vms.append(vm_from_record(record))

    def place_all(**kwargs):
        daemon = AllocationDaemon(
            ClusterStateStore(Cluster.paper_all_types(30)),
            seed=3, shards=4, **kwargs)
        try:
            trail = [daemon.handle(place_request(vm)) for vm in vms]
        finally:
            daemon.handle({"op": "shutdown"})
        return daemon, [(r["vm_id"], r.get("decision"),
                         r.get("server_id")) for r in trail]

    mismatches = []
    for name in allocator_names():
        plain, plain_trail = place_all(algorithm=name)
        pooled, pooled_trail = place_all(algorithm=name,
                                         scan_processes=3)
        if pooled_trail != plain_trail or \
                dict(pooled.store.placements) != \
                dict(plain.store.placements) or \
                pooled.store.energy_accumulated != \
                plain.store.energy_accumulated:
            mismatches.append(name)
    assert mismatches == []

    # one timed sample for the BENCH json: a pooled 40-VM stream
    benchmark.pedantic(
        lambda: place_all(algorithm="min-energy", scan_processes=3),
        rounds=1, iterations=1)


def test_v1_lines_byte_compatible_over_async_server():
    vm = generate_vms(1, mean_interarrival=2.0, seed=41)[0]
    daemon = AllocationDaemon(
        ClusterStateStore(Cluster.paper_all_types(10)))
    reference = AllocationDaemon(
        ClusterStateStore(Cluster.paper_all_types(10)))
    server = serve_async(daemon)
    try:
        with socket.create_connection(server.address, timeout=10) as raw:
            raw.sendall((json.dumps(place_request(vm)) + "\n").encode())
            line = raw.makefile("r", encoding="utf-8").readline()
    finally:
        server.stop()
    over_wire = json.loads(line)
    direct = json.loads(reference.handle_line(
        json.dumps(place_request(vm))))
    over_wire.pop("latency_ms", None)
    direct.pop("latency_ms", None)
    assert over_wire == direct
