"""Ablation: contribution of each Eq.-17 term to the heuristic's wins.

Re-weight the selection rule's cost components (plans always evaluated
under the full accounting) and compare against FFPS. Expectation: the
idle-power terms, not the run term, carry most of the advantage — the
run cost is nearly server-independent when per-capacity power is flat.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import FirstFitPowerSaving
from repro.energy.cost import allocation_cost
from repro.experiments.figures import format_table
from repro.extensions import CostWeights, WeightedMinEnergy
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2)

VARIANTS = {
    "full rule": CostWeights(),
    "no run term": CostWeights(run=0),
    "run only": CostWeights(run=1, busy_idle=0, gaps=0, wake=0),
    "idle terms only": CostWeights(run=0, busy_idle=1, gaps=1, wake=1),
}


def run_study():
    energies = {label: 0.0 for label in VARIANTS}
    ffps_total = 0.0
    for seed in SEEDS:
        vms = generate_vms(200, mean_interarrival=5.0, seed=seed)
        cluster = Cluster.paper_all_types(100)
        ffps_total += allocation_cost(
            FirstFitPowerSaving(seed=seed).allocate(vms, cluster)).total
        for label, weights in VARIANTS.items():
            allocator = WeightedMinEnergy(weights)
            energies[label] += allocation_cost(
                allocator.allocate(vms, cluster)).total
    return ({label: total / len(SEEDS)
             for label, total in energies.items()},
            ffps_total / len(SEEDS))


def test_ablation_cost_terms(benchmark):
    means, ffps = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [(label, round(energy, 0),
             round(100 * (ffps - energy) / ffps, 2))
            for label, energy in sorted(means.items(),
                                        key=lambda kv: kv[1])]
    record_result("ablation_cost_terms", format_table(
        ("selection rule", "energy", "vs ffps %"), rows))

    # the complete rule is the best variant
    assert means["full rule"] == min(means.values())
    # the idle-power terms carry the rule: dropping them hurts far more
    # than dropping the run term
    full = means["full rule"]
    assert means["no run term"] - full < means["run only"] - full
