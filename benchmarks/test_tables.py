"""Table I and Table II: the paper's parameter tables."""

from __future__ import annotations

from conftest import record_result
from repro.experiments.tables import table1, table2


def test_table1(benchmark):
    out = benchmark(table1)
    assert "standard-4" in out      # m1.xlarge, the "…15" OCR fragment
    assert "cpu-2" in out           # c1.xlarge, the "2 … 7" OCR fragment
    record_result("table1", out)


def test_table2(benchmark):
    out = benchmark(table2)
    assert "type3" in out           # the blade-class anchor
    assert "50%" in out and "40%" in out
    record_result("table2", out)
