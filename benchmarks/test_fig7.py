"""Fig. 7 — standard VM types on server types 1-3.

Paper shape: the heuristic saves up to ~20 % against FFPS (its best
showing), with logarithmic fits; savings grow with the inter-arrival time
and are similar for 100-500 VMs.
"""

from __future__ import annotations

from conftest import record_result
from repro.experiments.figures import fig7

N_VMS = (100, 300, 500)
INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig7(benchmark):
    result = benchmark.pedantic(
        fig7, kwargs=dict(n_vms_list=N_VMS, interarrivals=INTERARRIVALS,
                          seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig7", result.format())

    for series in result.series:
        reductions = series.reductions_pct()
        # who wins, and by what factor: double-digit peak savings
        # ("up to 20 %" in the paper; the peak sits at moderate loads —
        # the paper notes savings shrink again "as the mean inter-arrival
        # time is long [and] the load becomes light").
        assert max(reductions) > 10.0
        assert max(reductions) > reductions[0]
        # the paper's fit family for this figure is logarithmic.
        assert series.fit is not None and series.fit.kind == "logarithmic"
