"""Fig. 6 — impact of the mean VM length (1000 VMs / 500 servers).

Paper shape: the shorter the mean VM length, the better the heuristic
does against FFPS — short VMs make the load light and dynamic, where FFPS
wastes the most idle power.
"""

from __future__ import annotations

import numpy as np

from conftest import record_result
from repro.experiments.figures import fig6

INTERARRIVALS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
SEEDS = (0, 1, 2)


def test_fig6(benchmark):
    result = benchmark.pedantic(
        fig6, kwargs=dict(mean_durations=(2.0, 5.0, 10.0), n_vms=1000,
                          interarrivals=INTERARRIVALS, seeds=SEEDS),
        rounds=1, iterations=1)
    record_result("fig6", result.format())

    short, mid, long_ = result.series
    short_mean = np.mean(short.reductions_pct())
    mid_mean = np.mean(mid.reductions_pct())
    long_mean = np.mean(long_.reductions_pct())
    # ordering: shorter VMs -> more saving.
    assert short_mean > mid_mean > long_mean
    # and each curve increases with the inter-arrival time.
    for series in result.series:
        reductions = series.reductions_pct()
        assert reductions[-1] > reductions[0]
