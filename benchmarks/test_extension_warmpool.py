"""Extension study: the energy/latency frontier of warm pools.

The paper minimises energy and ignores the time VMs spend waiting for
server boots. This bench traces the frontier: each warm-pool size trades
extra idle energy for fewer VMs waiting out a transition — the curve an
operator with a placement-latency SLA actually picks from.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import MinIncrementalEnergy
from repro.extensions.warmpool import warm_pool_frontier
from repro.experiments.figures import format_table
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms


def run_study():
    vms = generate_vms(300, mean_interarrival=6.0, seed=0)
    cluster = Cluster.paper_all_types(150)
    plan = MinIncrementalEnergy().allocate(vms, cluster)
    used = len(plan.used_servers())
    sizes = sorted({0, used // 4, used // 2, used})
    return warm_pool_frontier(plan, sizes=sizes)


def test_extension_warmpool(benchmark):
    frontier = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [(p.pool_size, round(p.energy, 0),
             round(p.mean_latency, 3),
             round(100 * p.affected_fraction, 1))
            for p in frontier]
    record_result("extension_warmpool", format_table(
        ("warm servers", "energy", "mean wait (min)", "VMs waiting %"),
        rows))

    cold, hot = frontier[0], frontier[-1]
    # cold: cheapest but some VMs wait; hot: nobody waits but costs more
    assert cold.energy <= hot.energy
    assert hot.mean_latency <= cold.mean_latency
    assert cold.affected_fraction > 0.0
    # the frontier is monotone: warming more never increases latency
    for a, b in zip(frontier, frontier[1:]):
        assert b.mean_latency <= a.mean_latency + 1e-9
