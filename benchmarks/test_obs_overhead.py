"""Overhead guard: the no-op tracer must cost (almost) nothing.

The instrumentation left in the hot paths — spans around
``simulate_online``/``allocate``/``replay``, the ``tracer.enabled``
guards, the per-``select`` candidate counters — is always executed, even
with tracing disabled. This benchmark compares the instrumented
:func:`repro.simulation.simulate_online` under the default
:data:`~repro.obs.tracer.NULL_TRACER` against a hand-written,
un-instrumented reconstruction of the exact same work (order, select,
place, replay) on a 2000-VM workload, and asserts the no-op path stays
within 5% of the bare loop. Minima over interleaved repetitions are
compared, so scheduler noise hits both variants alike.
"""

from __future__ import annotations

import statistics
import time

from repro.allocators import make_allocator
from repro.allocators.state import ServerState
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.obs.tracer import NULL_TRACER, get_tracer
from repro.simulation import SimulationEngine, simulate_online
from repro.workload.generator import generate_vms

from conftest import record_result

N_VMS = 2000
ALGORITHM = "ffps"
REPEATS = 7
MAX_OVERHEAD = 0.05

VMS = generate_vms(N_VMS, mean_interarrival=1.0, seed=0)
CLUSTER = Cluster.paper_all_types(N_VMS // 2)


def baseline_run():
    """The same allocate-then-replay trajectory with zero obs calls."""
    allocator = make_allocator(ALGORITHM, seed=0)
    ordered = allocator.order_vms(list(VMS))
    states = [ServerState(server) for server in CLUSTER]
    allocator.prepare(states)
    placements = {}
    for vm in ordered:
        chosen = allocator.select(vm, states)
        chosen.place(vm)
        placements[vm] = chosen.server.server_id
    allocation = Allocation(CLUSTER, placements)
    return SimulationEngine(CLUSTER)._replay(allocation)


def instrumented_run():
    _, result = simulate_online(VMS, CLUSTER,
                                make_allocator(ALGORITHM, seed=0))
    return result


def timed(fn) -> float:
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    assert result.total_energy > 0
    return elapsed


def test_null_tracer_overhead_under_five_percent():
    assert get_tracer() is NULL_TRACER  # the disabled default
    baseline_times = []
    instrumented_times = []
    timed(baseline_run), timed(instrumented_run)  # warm-up
    for _ in range(REPEATS):
        baseline_times.append(timed(baseline_run))
        instrumented_times.append(timed(instrumented_run))
    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    overhead = instrumented / baseline - 1.0
    lines = [
        f"no-op tracer overhead on simulate_online "
        f"({N_VMS} VMs, {len(CLUSTER)} servers, {ALGORITHM}, "
        f"min of {REPEATS} interleaved repeats)",
        "",
        f"{'variant':<24} {'min_s':>8} {'median_s':>9}",
        f"{'bare loop':<24} {baseline:>8.4f} "
        f"{statistics.median(baseline_times):>9.4f}",
        f"{'instrumented (no-op)':<24} {instrumented:>8.4f} "
        f"{statistics.median(instrumented_times):>9.4f}",
        "",
        f"overhead: {100 * overhead:+.2f}% "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)",
    ]
    record_result("obs_overhead", "\n".join(lines))
    assert instrumented <= baseline * (1.0 + MAX_OVERHEAD), \
        f"no-op tracer overhead {100 * overhead:.2f}% exceeds " \
        f"{100 * MAX_OVERHEAD:.0f}% (baseline {baseline:.4f}s, " \
        f"instrumented {instrumented:.4f}s)"


# --- daemon scale point: the *enabled* stack must stay cheap too -----
#
# The simulator check above guards the disabled path. This one guards
# the opposite end: a daemon serving 2000 traced place requests with
# the full observability stack live (tracer, JSON logging, telemetry
# ring, SLO tracker, flight recorder) against the same daemon with
# every obs surface disabled. The budget is the same 5%.

DAEMON_REPEATS = 5


def _place_lines(traced: bool) -> list[str]:
    import json

    from repro.service import place_request

    lines = []
    for i, vm in enumerate(VMS):
        request = place_request(vm)
        if traced:
            request["trace_id"] = f"{i:016x}"
            request["request_id"] = f"{i:08x}"
        lines.append(json.dumps(request))
    return lines


PLAIN_LINES = _place_lines(traced=False)
TRACED_LINES = _place_lines(traced=True)


def _drive_daemon(observed: bool) -> float:
    import io

    from repro.obs import JsonLogger, Tracer, use_logger, use_tracer
    from repro.obs.logging import NULL_LOGGER
    from repro.obs.tracer import NULL_TRACER
    from repro.service import AllocationDaemon, ClusterStateStore

    store = ClusterStateStore(Cluster.paper_all_types(N_VMS // 2))
    if observed:
        daemon = AllocationDaemon(store, algorithm=ALGORITHM, seed=0)
        tracer, logger = Tracer(), JsonLogger(io.StringIO(),
                                              level="info")
        lines = TRACED_LINES
    else:
        daemon = AllocationDaemon(store, algorithm=ALGORITHM, seed=0,
                                  telemetry_capacity=0,
                                  flight_capacity=0)
        tracer, logger = NULL_TRACER, NULL_LOGGER
        lines = PLAIN_LINES
    with use_tracer(tracer), use_logger(logger):
        start = time.perf_counter()
        for line in lines:
            daemon.handle_line(line)
        elapsed = time.perf_counter() - start
    stats = daemon.handle({"op": "stats"})
    assert stats["placed"] + stats["rejected"] + stats["delayed"] == N_VMS
    return elapsed


def test_daemon_obs_on_overhead_under_five_percent():
    off_times, on_times = [], []
    _drive_daemon(False), _drive_daemon(True)  # warm-up
    for _ in range(DAEMON_REPEATS):
        off_times.append(_drive_daemon(False))
        on_times.append(_drive_daemon(True))
    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    lines = [
        f"daemon observability overhead "
        f"({N_VMS} traced place requests over the wire path, "
        f"{ALGORITHM}, min of {DAEMON_REPEATS} interleaved repeats)",
        "",
        f"{'variant':<28} {'min_s':>8} {'median_s':>9}",
        f"{'obs off (all disabled)':<28} {off:>8.4f} "
        f"{statistics.median(off_times):>9.4f}",
        f"{'obs on (full stack)':<28} {on:>8.4f} "
        f"{statistics.median(on_times):>9.4f}",
        "",
        f"overhead: {100 * overhead:+.2f}% "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)",
    ]
    record_result("obs_daemon_overhead", "\n".join(lines))
    assert on <= off * (1.0 + MAX_OVERHEAD), \
        f"obs-on daemon overhead {100 * overhead:.2f}% exceeds " \
        f"{100 * MAX_OVERHEAD:.0f}% (off {off:.4f}s, on {on:.4f}s)"
