"""Overhead guard: the no-op tracer must cost (almost) nothing.

The instrumentation left in the hot paths — spans around
``simulate_online``/``allocate``/``replay``, the ``tracer.enabled``
guards, the per-``select`` candidate counters — is always executed, even
with tracing disabled. This benchmark compares the instrumented
:func:`repro.simulation.simulate_online` under the default
:data:`~repro.obs.tracer.NULL_TRACER` against a hand-written,
un-instrumented reconstruction of the exact same work (order, select,
place, replay) on a 2000-VM workload, and asserts the no-op path stays
within 5% of the bare loop. Minima over interleaved repetitions are
compared, so scheduler noise hits both variants alike.
"""

from __future__ import annotations

import statistics
import time

from repro.allocators import make_allocator
from repro.allocators.state import ServerState
from repro.model.allocation import Allocation
from repro.model.cluster import Cluster
from repro.obs.tracer import NULL_TRACER, get_tracer
from repro.simulation import SimulationEngine, simulate_online
from repro.workload.generator import generate_vms

from conftest import record_result

N_VMS = 2000
ALGORITHM = "ffps"
REPEATS = 7
MAX_OVERHEAD = 0.05

VMS = generate_vms(N_VMS, mean_interarrival=1.0, seed=0)
CLUSTER = Cluster.paper_all_types(N_VMS // 2)


def baseline_run():
    """The same allocate-then-replay trajectory with zero obs calls."""
    allocator = make_allocator(ALGORITHM, seed=0)
    ordered = allocator.order_vms(list(VMS))
    states = [ServerState(server) for server in CLUSTER]
    allocator.prepare(states)
    placements = {}
    for vm in ordered:
        chosen = allocator.select(vm, states)
        chosen.place(vm)
        placements[vm] = chosen.server.server_id
    allocation = Allocation(CLUSTER, placements)
    return SimulationEngine(CLUSTER)._replay(allocation)


def instrumented_run():
    _, result = simulate_online(VMS, CLUSTER,
                                make_allocator(ALGORITHM, seed=0))
    return result


def timed(fn) -> float:
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    assert result.total_energy > 0
    return elapsed


def test_null_tracer_overhead_under_five_percent():
    assert get_tracer() is NULL_TRACER  # the disabled default
    baseline_times = []
    instrumented_times = []
    timed(baseline_run), timed(instrumented_run)  # warm-up
    for _ in range(REPEATS):
        baseline_times.append(timed(baseline_run))
        instrumented_times.append(timed(instrumented_run))
    baseline = min(baseline_times)
    instrumented = min(instrumented_times)
    overhead = instrumented / baseline - 1.0
    lines = [
        f"no-op tracer overhead on simulate_online "
        f"({N_VMS} VMs, {len(CLUSTER)} servers, {ALGORITHM}, "
        f"min of {REPEATS} interleaved repeats)",
        "",
        f"{'variant':<24} {'min_s':>8} {'median_s':>9}",
        f"{'bare loop':<24} {baseline:>8.4f} "
        f"{statistics.median(baseline_times):>9.4f}",
        f"{'instrumented (no-op)':<24} {instrumented:>8.4f} "
        f"{statistics.median(instrumented_times):>9.4f}",
        "",
        f"overhead: {100 * overhead:+.2f}% "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)",
    ]
    record_result("obs_overhead", "\n".join(lines))
    assert instrumented <= baseline * (1.0 + MAX_OVERHEAD), \
        f"no-op tracer overhead {100 * overhead:.2f}% exceeds " \
        f"{100 * MAX_OVERHEAD:.0f}% (baseline {baseline:.4f}s, " \
        f"instrumented {instrumented:.4f}s)"
