"""Extension study: robustness of plans to a non-affine power curve.

Plans are optimised under the paper's affine Eq.-1 model; electricity is
then "billed" under ``P = P_idle + (P_peak - P_idle) u^gamma`` for several
gamma. If the heuristic's advantage over FFPS evaporated off the affine
assumption, the whole approach would be fragile — this bench shows it
degrades only mildly.
"""

from __future__ import annotations

from conftest import record_result
from repro.allocators import FirstFitPowerSaving, MinIncrementalEnergy
from repro.experiments.figures import format_table
from repro.extensions import SuperlinearPowerModel, evaluate_under_model
from repro.model.cluster import Cluster
from repro.workload.generator import generate_vms

SEEDS = (0, 1, 2)
GAMMAS = (1.0, 1.2, 1.4, 2.0)


def run_study():
    reductions = {gamma: 0.0 for gamma in GAMMAS}
    for seed in SEEDS:
        vms = generate_vms(300, mean_interarrival=5.0, seed=seed)
        cluster = Cluster.paper_all_types(150)
        ours = MinIncrementalEnergy().allocate(vms, cluster)
        ffps = FirstFitPowerSaving(seed=seed).allocate(vms, cluster)
        for gamma in GAMMAS:
            model = SuperlinearPowerModel(gamma)
            ours_cost = evaluate_under_model(ours, model)
            ffps_cost = evaluate_under_model(ffps, model)
            reductions[gamma] += 100 * (ffps_cost - ours_cost) / ffps_cost
    return {gamma: total / len(SEEDS)
            for gamma, total in reductions.items()}


def test_extension_nonlinear(benchmark):
    means = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [(gamma, round(reduction, 2))
            for gamma, reduction in means.items()]
    record_result("extension_nonlinear", format_table(
        ("gamma", "reduction vs ffps %"), rows))

    # the advantage persists under every billing curve...
    for reduction in means.values():
        assert reduction > 5.0
    # ...and degrades by less than half even at gamma = 2
    assert means[2.0] > 0.5 * means[1.0]
